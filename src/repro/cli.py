"""An interactive shell for the transaction modification subsystem.

Run with ``python -m repro`` (optionally piping a script).  The shell wires
together the whole stack — DDL, data loading, RL rules, CL constraints,
queries, and transactions with live transaction modification — and exposes
the subsystem's introspection (rule catalog, triggering graph, the modified
form of a transaction before execution).

Commands::

    relation NAME(attr domain [null], ...)   -- DDL, before any data exists
    load NAME (v, ...) (v, ...) ...          -- bulk-load rows (no checks)
    rule <RL text>                           -- register an integrity rule
    constraint NAME <CL text>                -- shorthand: aborting rule
    begin ... end                            -- run a transaction (modified)
    commit begin ... end                     -- optimistic commit + deferred audit
    query <algebra expression>               -- evaluate and print rows
    check <CL text>                          -- evaluate a constraint now
    show rules | graph | schema | db         -- introspection
    explain begin ... end                    -- print the modified form only
    audit                                    -- direct-check all rules
    audit-log [N]                            -- tail commit log + audit verdicts
    audit-log verify [DIR]                   -- verify the durable log's hash chain
    help                                     -- this text
    exit / quit

``python -m repro audit-log [script] [-n N]`` runs a script (or stdin)
non-interactively and tails the resulting commit log and audit verdicts —
the debugging window into the concurrent enforcement pipeline.

``python -m repro [--executor inline|thread|process] ...`` selects the
audit executor the shell's scheduler dispatches fan-out tasks to:
``inline`` runs every audit on the draining thread, ``thread`` (default)
overlaps them on a thread pool, ``process`` ships them to worker
processes holding shared-nothing database replicas (true multi-core).

``python -m repro --durable DIR ...`` layers a durable, hash-chained
write-ahead log under the shell's database: commits survive crashes, and
an existing log directory is recovered (checkpoint + replay) on startup.
``python -m repro recover DIR [--to SEQ]`` replays a log directory and
prints the recovered state; ``python -m repro audit-log --verify DIR``
walks the full hash chain and reports the first broken link (exit 1).
"""

from __future__ import annotations

import sys
from typing import Callable, List, Optional, TextIO

from repro import __version__
from repro.algebra.pretty import render_transaction
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.calculus.pretty import render_constraint
from repro.core.subsystem import IntegrityController
from repro.core.triggers import format_trigger_set
from repro.ddl import parse_relation_schema, render_relation_schema
from repro.engine import Database, DatabaseSchema, Session
from repro.engine.session import DatabaseView
from repro.errors import ReproError

PROMPT = "repro> "
CONTINUATION = "   ... "


class Shell:
    """The interactive shell state machine (testable: streams injectable)."""

    def __init__(
        self,
        stdin: Optional[TextIO] = None,
        stdout: Optional[TextIO] = None,
        interactive: bool = True,
        executor: str = "thread",
        durable: Optional[str] = None,
    ):
        self.stdin = stdin or sys.stdin
        self.stdout = stdout or sys.stdout
        self.interactive = interactive
        self.executor = executor
        self.schema = DatabaseSchema()
        self.database = Database(self.schema)
        if durable:
            self._open_durable(durable)
        self.controller = IntegrityController(self.schema)
        self.session = Session(self.database, self.controller)
        # Pin the executor choice now: the per-database scheduler is created
        # once (weakly cached) and commit/audit paths reuse it.
        self.controller.audit_scheduler(self.database, executor=executor)
        self.running = False

    def _open_durable(self, directory: str) -> None:
        """Attach (or recover from) a durable commit log at ``directory``.

        An already-populated log is recovered first — the shell resumes the
        committed history, with the log re-attached; an empty directory
        starts a fresh durable database.  Rules are not persisted: scripts
        re-register them each run.
        """
        from repro.engine.wal import WriteAheadLog

        wal = WriteAheadLog(directory)
        if wal.latest_checkpoint() is not None:
            wal.close()
            self.database = Database.recover(directory)
            self.schema = self.database.schema
            report = self.database.last_recovery
            self.write(f"recovered {report!r}")
        else:
            self.database.attach_wal(wal)

    # -- i/o helpers -----------------------------------------------------------

    def write(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    def _read_line(self, prompt: str) -> Optional[str]:
        if self.interactive:
            self.stdout.write(prompt)
            self.stdout.flush()
        line = self.stdin.readline()
        if not line:
            return None
        return line.rstrip("\n")

    def _read_block(self, first_line: str, end_token: str) -> str:
        """Collect lines until one ends with ``end_token`` (or is empty)."""
        lines = [first_line]
        while not _block_complete(lines, end_token):
            line = self._read_line(CONTINUATION)
            if line is None or line.strip() == "":
                break
            lines.append(line)
        return "\n".join(lines)

    # -- main loop ----------------------------------------------------------------

    def run(self) -> int:
        self.running = True
        if self.interactive:
            self.write(f"repro {__version__} — transaction modification shell")
            self.write("type 'help' for commands")
        try:
            while self.running:
                line = self._read_line(PROMPT)
                if line is None:
                    break
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    self.dispatch(line)
                except ReproError as error:
                    self.write(f"error: {error}")
                except Exception as error:  # pragma: no cover - safety net
                    self.write(f"internal error: {error!r}")
        finally:
            # Deterministic teardown: never leak audit worker threads or
            # processes past the shell's lifetime.
            self.controller.close_schedulers()
            if self.database.wal is not None:
                # DDL and bulk loads bypass the commit path; a fresh
                # checkpoint makes them part of the next recovery too.
                self.database.wal.write_checkpoint(self.database)
                self.database.detach_wal()
        return 0

    # -- command dispatch -------------------------------------------------------------

    def dispatch(self, line: str) -> None:
        word = line.split(None, 1)[0].lower()
        rest = line[len(word):].strip()
        handlers: dict = {
            "relation": self.cmd_relation,
            "load": self.cmd_load,
            "rule": self.cmd_rule,
            "constraint": self.cmd_constraint,
            "begin": lambda _: self.cmd_begin(line),
            "commit": self.cmd_commit,
            "query": self.cmd_query,
            "check": self.cmd_check,
            "audit-log": self.cmd_audit_log,
            "show": self.cmd_show,
            "explain": self.cmd_explain,
            "audit": self.cmd_audit,
            "help": self.cmd_help,
            "exit": self.cmd_exit,
            "quit": self.cmd_exit,
        }
        handler = handlers.get(word)
        if handler is None:
            self.write(f"unknown command {word!r}; try 'help'")
            return
        handler(rest)

    def cmd_relation(self, rest: str) -> None:
        schema = parse_relation_schema(f"relation {rest}")
        self.database.add_relation(schema)
        self.write(f"created {render_relation_schema(schema)}")

    def cmd_load(self, rest: str) -> None:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            self.write("usage: load NAME (v, ...) (v, ...)")
            return
        name, rows_text = parts
        from repro.algebra.parser import parse_expression

        rows = []
        depth = 0
        current = ""
        for char in rows_text:
            current += char
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0:
                    rows.append(current.strip().strip(","))
                    current = ""
        literal = parse_expression("{" + ", ".join(rows) + "}")
        inserted = self.database.load(name, literal.rows)
        self.write(f"loaded {inserted} row(s) into {name}")

    def cmd_rule(self, rest: str) -> None:
        text = self._read_block(rest, end_token="")
        rule = self.controller.add_rule(text)
        kind = "aborting" if rule.is_aborting else "compensating"
        self.write(
            f"registered {rule.name} ({kind}), "
            f"WHEN {format_trigger_set(rule.triggers)}"
        )

    def cmd_constraint(self, rest: str) -> None:
        parts = rest.split(None, 1)
        if len(parts) != 2:
            self.write("usage: constraint NAME <CL text>")
            return
        name, text = parts
        rule = self.controller.add_constraint(name, text)
        self.write(
            f"registered {rule.name} (aborting), "
            f"WHEN {format_trigger_set(rule.triggers)}"
        )

    def cmd_begin(self, line: str) -> None:
        text = self._read_block(line, end_token="end")
        result = self.session.execute(text)
        if result.committed:
            self.write(
                f"committed (t={result.post_time}; "
                f"+{result.tuples_inserted}/-{result.tuples_deleted} tuples)"
            )
        else:
            self.write(f"aborted: {result.reason}")

    def cmd_commit(self, rest: str) -> None:
        """Optimistic commit: run unmodified, audit through the pipeline."""
        text = self._read_block(rest, end_token="end")
        result = self.session.commit(text, audit="deferred")
        if result.committed:
            self.write(
                f"committed (t={result.post_time}; "
                f"+{result.tuples_inserted}/-{result.tuples_deleted} tuples; "
                f"audit deferred — see audit-log)"
            )
        else:
            self.write(f"aborted: {result.reason}")

    def cmd_explain(self, rest: str) -> None:
        text = self._read_block(rest, end_token="end")
        transaction = self.session.transaction(text)
        modified = self.controller.modify_transaction(transaction)
        self.write(render_transaction(modified))
        stats = self.controller.last_stats
        self.write(
            f"-- {stats.rounds} round(s), rules: "
            f"{', '.join(stats.selected_rule_names) or '(none)'}"
        )

    def cmd_query(self, rest: str) -> None:
        rows = self.session.rows(rest)
        for row in rows:
            self.write(f"  {row}")
        self.write(f"({len(rows)} row(s))")

    def cmd_check(self, rest: str) -> None:
        formula = parse_constraint(rest)
        verdict = evaluate_constraint(formula, DatabaseView(self.database))
        self.write("satisfied" if verdict else "VIOLATED")

    def cmd_audit(self, rest: str) -> None:
        violated = self.controller.violated_constraints(self.database)
        if violated:
            self.write(f"VIOLATED: {', '.join(violated)}")
        else:
            self.write("all constraints satisfied")

    def cmd_audit_log(self, rest: str) -> None:
        """Tail the commit log and the scheduler's audit verdicts."""
        limit = 10
        rest = rest.strip()
        if rest.split(None, 1)[:1] == ["verify"]:
            self.cmd_audit_log_verify(rest[len("verify"):].strip())
            return
        if rest:
            try:
                limit = max(int(rest), 1)
            except ValueError:
                self.write("usage: audit-log [N] | audit-log verify [DIR]")
                return
        log = self.database.commit_log
        self.write(f"commit log: {len(log)} record(s), next #{log.next_sequence}")
        for record in log.tail(limit):
            sizes = ", ".join(
                f"{base} +{plus}/-{minus}"
                for base, (plus, minus) in record.sizes().items()
            )
            self.write(
                f"  #{record.sequence} t={record.pre_time}->"
                f"{record.post_time} {sizes or '(empty)'}"
            )
        scheduler = self.controller.audit_scheduler(
            self.database, executor=self.executor
        )
        pending = scheduler.pending()
        if pending:
            self.write(f"auditing {pending} pending commit(s)...")
            if self.executor == "inline":
                scheduler.drain(coalesce=False)
            else:
                # Exercise the configured pool, then merge deterministically.
                scheduler.drain(asynchronous=True, coalesce=False)
                scheduler.wait()
        verdicts = scheduler.history[-limit * 4 :]
        self.write(f"audit verdicts ({len(scheduler.history)} total):")
        if not verdicts:
            self.write("  (none)")
        for outcome in verdicts:
            span = ",".join(f"#{seq}" for seq in outcome.sequences) or "#?"
            if outcome.failed:
                state = f"FAILED: {outcome.error}"
            elif outcome.violated:
                sample = ", ".join(repr(row) for row in outcome.violations)
                state = f"VIOLATED ({sample})"
            else:
                state = "ok"
            where = (
                outcome.mode
                if outcome.executor is None
                else f"{outcome.mode}/{outcome.executor}"
            )
            self.write(f"  {span} {outcome.rule}: {state} [{where}]")

    def cmd_audit_log_verify(self, rest: str) -> None:
        """Verify the durable log's hash chain (attached or by directory)."""
        from repro.engine.wal import verify_directory

        directory = rest
        if not directory:
            if self.database.wal is None:
                self.write(
                    "no durable log attached (start with --durable DIR, "
                    "or: audit-log verify DIR)"
                )
                return
            self.database.wal.sync()
            directory = str(self.database.wal.directory)
        verification = verify_directory(directory)
        for line in render_verification(directory, verification):
            self.write(line)

    def cmd_show(self, rest: str) -> None:
        what = rest.strip().lower()
        if what == "rules":
            if not self.controller.rules:
                self.write("(no rules)")
            for rule in self.controller.rules:
                kind = "abort" if rule.is_aborting else "compensate"
                self.write(
                    f"  {rule.name}: WHEN {format_trigger_set(rule.triggers)} "
                    f"IF NOT {render_constraint(rule.condition)} [{kind}]"
                )
        elif what == "graph":
            graph = self.controller.triggering_graph()
            self.write(f"  {graph}")
            for edge in graph.edges:
                self.write(f"  {edge[0]} -> {edge[1]}")
            if not graph.is_acyclic:
                self.write(
                    f"  suggest non-triggering: "
                    f"{graph.suggest_non_triggering()}"
                )
        elif what == "schema":
            for relation_schema in self.schema:
                self.write(f"  {render_relation_schema(relation_schema)}")
        elif what == "db":
            self.write(f"  {self.database}")
        else:
            self.write("usage: show rules | graph | schema | db")

    def cmd_help(self, rest: str) -> None:
        self.write(__doc__.split("Commands::")[1])

    def cmd_exit(self, rest: str) -> None:
        self.running = False


def _block_complete(lines: List[str], end_token: str) -> bool:
    if not end_token:
        # Rule blocks end at a blank line (handled by the reader) or when
        # the text already parses on its own — single-line rules.
        text = "\n".join(lines)
        if "then" in text.lower() or "if" not in text.lower():
            return _parses_as_rule(text)
        return False
    stripped = lines[-1].strip().lower()
    return stripped == end_token or stripped.endswith(" " + end_token) or (
        len(lines) == 1 and stripped.endswith(end_token) and len(stripped) > len(end_token)
    ) or stripped.endswith(";" + end_token)


def _parses_as_rule(text: str) -> bool:
    from repro.core.rule_language import parse_rule

    try:
        parse_rule(text)
        return True
    except ReproError:
        return False


def render_verification(directory, verification) -> List[str]:
    """Human-readable lines for a hash-chain verification verdict."""
    lines = [
        f"audit log {directory}: {verification.segments} segment(s), "
        f"{verification.records} record(s)"
        + (
            f", last sequence #{verification.last_sequence}"
            if verification.last_sequence is not None
            else ""
        )
    ]
    if verification.torn_tail is not None:
        segment, offset, reason = verification.torn_tail
        lines.append(
            f"torn tail at {segment} @ byte {offset} ({reason}) — "
            f"crash residue; the next open repairs it"
        )
    if verification.ok:
        lines.append("hash chain OK")
    else:
        segment, offset, reason = verification.broken
        lines.append(
            f"hash chain BROKEN at {segment} @ byte {offset}: {reason}"
        )
    return lines


def verify_main(args: List[str]) -> int:
    """``python -m repro audit-log --verify DIR``: full hash-chain walk.

    Exit status 0 when the chain verifies end to end, 1 when a broken
    link was found (the first one is reported with segment and byte
    offset).  A torn tail — legitimate crash residue — is reported but
    does not fail verification.
    """
    from repro.engine.wal import verify_directory

    if len(args) != 1:
        sys.stderr.write("usage: python -m repro audit-log --verify DIR\n")
        return 2
    verification = verify_directory(args[0])
    for line in render_verification(args[0], verification):
        sys.stdout.write(line + "\n")
    return 0 if verification.ok else 1


def recover_main(args: List[str]) -> int:
    """``python -m repro recover DIR [--to SEQ]``: replay a durable log.

    Rebuilds the database (optionally only up to commit sequence SEQ) and
    prints the recovery report plus per-relation cardinalities.  Exit
    status 1 on a broken hash chain or an unusable log.
    """
    from repro.errors import WalError

    upto: Optional[int] = None
    paths: List[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg == "--to":
            try:
                upto = int(next(iterator))
            except (StopIteration, ValueError):
                sys.stderr.write("recover: --to needs an integer sequence\n")
                return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        sys.stderr.write("usage: python -m repro recover DIR [--to SEQ]\n")
        return 2
    try:
        database = Database.recover(paths[0], upto=upto)
    except WalError as error:
        sys.stderr.write(f"recover: {type(error).__name__}: {error}\n")
        return 1
    report = database.last_recovery
    sys.stdout.write(f"{report!r}\n")
    for relation_schema in database.schema:
        relation = database.relation(relation_schema.name)
        sys.stdout.write(f"  {relation_schema.name}: {len(relation)} row(s)\n")
    if database.wal is not None:
        database.detach_wal()
    return 0


def audit_log_main(args: List[str], executor: str = "thread") -> int:
    """``python -m repro audit-log [script] [-n N]``.

    Runs the script (or stdin) through a non-interactive shell, then tails
    the database's commit log and the scheduler's audit verdicts — i.e.
    what the concurrent enforcement pipeline saw and decided.

    ``python -m repro audit-log --verify DIR`` instead verifies the full
    hash chain of the durable log at DIR (see :func:`verify_main`).
    """
    if "--verify" in args:
        remaining = [arg for arg in args if arg != "--verify"]
        return verify_main(remaining)
    limit = 10
    paths: List[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg in ("-n", "--limit"):
            try:
                limit = max(int(next(iterator)), 1)
            except (StopIteration, ValueError):
                sys.stderr.write("audit-log: -n needs an integer\n")
                return 2
        else:
            paths.append(arg)
    if len(paths) > 1:
        sys.stderr.write("usage: python -m repro audit-log [script] [-n N]\n")
        return 2
    stream = open(paths[0]) if paths else sys.stdin
    try:
        shell = Shell(stdin=stream, interactive=False, executor=executor)
        shell.run()
        shell.cmd_audit_log(str(limit))
        shell.controller.close_schedulers()
    finally:
        if paths:
            stream.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    from repro.core.scheduler import EXECUTORS

    args = list(sys.argv[1:] if argv is None else argv)
    executor = "thread"
    while "--executor" in args:
        position = args.index("--executor")
        try:
            executor = args[position + 1]
        except IndexError:
            sys.stderr.write(
                f"--executor needs a value: one of {', '.join(EXECUTORS)}\n"
            )
            return 2
        del args[position : position + 2]
    if executor not in EXECUTORS:
        sys.stderr.write(
            f"unknown executor {executor!r}; expected one of "
            f"{', '.join(EXECUTORS)}\n"
        )
        return 2
    durable: Optional[str] = None
    while "--durable" in args:
        position = args.index("--durable")
        try:
            durable = args[position + 1]
        except IndexError:
            sys.stderr.write("--durable needs a log directory\n")
            return 2
        del args[position : position + 2]
    if args and args[0] == "audit-log":
        return audit_log_main(args[1:], executor=executor)
    if args and args[0] == "recover":
        return recover_main(args[1:])
    interactive = sys.stdin.isatty()
    shell = Shell(interactive=interactive, executor=executor, durable=durable)
    return shell.run()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
