"""Parser for the constraint language CL.

The concrete syntax accepts both plain ASCII and the paper's symbols:

.. code-block:: text

    (forall x)(x in beer => x.alcohol >= 0)
    (∀x)(x ∈ beer ⇒ x.alcohol ≥ 0)                     # same constraint
    (forall x in beer)(exists y in brewery)(x.brewery = y.name)
    (forall x, y)((x in emp and y in emp and x.dept = y.dept)
                  => x.grade <= y.grade + 2)
    CNT(beer) <= 1000
    SUM(account, balance) >= 0

Grammar (informal):

.. code-block:: text

    wff       := implication
    implication := disjunction [ '=>' implication ]        (right assoc)
    disjunction := conjunction { 'or' conjunction }
    conjunction := unary { 'and' unary }
    unary     := 'not' unary | quantified | group | atom
    quantified := '(' ('forall'|'exists') vars ['in' REL] ')' '(' wff ')'
    vars      := NAME { ',' NAME }
    atom      := NAME 'in' REL | term cmp term
    term      := arithmetic over: const | NAME '.' attr |
                 AGG '(' REL ',' attr ')' | CNT/MLT '(' REL ')'

A bounded quantifier ``(forall x in R)(W)`` desugars to
``(forall x)(x in R => W)``; ``(exists x in R)(W)`` to
``(exists x)(x in R and W)``; a variable list quantifies each variable in
turn, all bounded by the same relation when ``in REL`` is present.  A
comparison between two bare variables parses as tuple equality (Def 4.3).
"""

from __future__ import annotations

from typing import List

from repro.calculus import ast as C
from repro.errors import ParseError
from repro.lex import TokenStream

_CMP_OPS = ("<", "<=", "=", "!=", "<>", ">=", ">")
_RESERVED = frozenset(
    ["forall", "exists", "and", "or", "not", "in", "true", "false", "null"]
)


class _Parser:
    def __init__(self, text: str):
        self.stream = TokenStream(text)

    # -- formulas ---------------------------------------------------------------

    def wff(self) -> C.Formula:
        left = self.disjunction()
        if self.stream.accept("OP", "=>"):
            right = self.wff()  # right-associative
            return C.Implies(left, right)
        return left

    def disjunction(self) -> C.Formula:
        left = self.conjunction()
        while self.stream.accept_name("or"):
            left = C.Or(left, self.conjunction())
        return left

    def conjunction(self) -> C.Formula:
        left = self.unary()
        while self.stream.accept_name("and"):
            left = C.And(left, self.unary())
        return left

    def unary(self) -> C.Formula:
        stream = self.stream
        if stream.accept_name("not"):
            return C.Not(self.unary())
        if stream.at("OP", "("):
            ahead = stream.peek()
            if ahead.kind == "NAME" and ahead.value.lower() in ("forall", "exists"):
                return self.quantified()
            # '(' may open a sub-formula or a parenthesized term; backtrack.
            mark = stream.index
            stream.advance()
            try:
                inner = self.wff()
                stream.expect("OP", ")")
                if self._at_cmp_or_arith():
                    raise ParseError("term context")
                return inner
            except ParseError:
                stream.index = mark
        return self.atom()

    def _at_cmp_or_arith(self) -> bool:
        token = self.stream.current
        return token.kind == "OP" and token.value in _CMP_OPS + ("+", "-", "*", "/")

    def quantified(self) -> C.Formula:
        stream = self.stream
        stream.expect("OP", "(")
        kind = stream.expect_name("forall", "exists").value.lower()
        variables: List[str] = [self._variable()]
        while stream.accept("OP", ","):
            variables.append(self._variable())
        bound_relation = None
        if stream.accept_name("in"):
            bound_relation = stream.expect("NAME").value
        stream.expect("OP", ")")
        stream.expect("OP", "(")
        if stream.at_name("forall", "exists"):
            # Chained form (forall x)(exists y)(...): the '(' just consumed
            # opens the next quantifier group, not a plain body.  Rewind and
            # parse the chained quantifier as the whole body.
            stream.index -= 1
            body = self.quantified()
        else:
            body = self.wff()
            stream.expect("OP", ")")
        make = C.forall_in if kind == "forall" else C.exists_in
        plain = C.Forall if kind == "forall" else C.Exists
        result = body
        for var in reversed(variables):
            if bound_relation is not None:
                result = make(var, bound_relation, result)
            else:
                result = plain(var, result)
        return result

    def _variable(self) -> str:
        token = self.stream.expect("NAME")
        if token.value.lower() in _RESERVED:
            raise ParseError(
                f"reserved word {token.value!r} cannot be a variable name"
            )
        return token.value

    def atom(self) -> C.Formula:
        stream = self.stream
        # Membership: NAME in REL
        if stream.at("NAME") and stream.peek().kind == "NAME":
            ahead = stream.peek()
            if (
                ahead.value.lower() == "in"
                and stream.current.value.lower() not in _RESERVED
            ):
                var = stream.advance().value
                stream.advance()  # 'in'
                relation = stream.expect("NAME").value
                return C.Member(var, relation)
        left = self.term()
        token = stream.current
        if token.kind != "OP" or token.value not in _CMP_OPS:
            raise ParseError(
                f"expected a comparison operator at position {token.position}, "
                f"found {token.text or 'end of input'!r}"
            )
        op = "!=" if token.value == "<>" else token.value
        stream.advance()
        right = self.term()
        # A bare-variable equality is tuple equality (Def 4.3).
        if (
            op == "="
            and isinstance(left, C.AttrSel)
            and isinstance(right, C.AttrSel)
        ):
            pass  # attribute selections stay arithmetic comparisons
        if op == "=" and isinstance(left, _BareVar) and isinstance(right, _BareVar):
            return C.TupleEq(left.name, right.name)
        if isinstance(left, _BareVar) or isinstance(right, _BareVar):
            raise ParseError(
                "a bare tuple variable can only be compared with '=' to "
                "another tuple variable"
            )
        return C.Compare(op, left, right)

    # -- terms -----------------------------------------------------------------

    def term(self) -> C.Term:
        left = self.term_addend()
        while self.stream.at("OP", "+") or self.stream.at("OP", "-"):
            op = self.stream.advance().value
            right = self.term_addend()
            left = C.ArithTerm(op, _devar(left), _devar(right))
        return left

    def term_addend(self) -> C.Term:
        left = self.term_factor()
        while self.stream.at("OP", "*") or self.stream.at("OP", "/"):
            op = self.stream.advance().value
            right = self.term_factor()
            left = C.ArithTerm(op, _devar(left), _devar(right))
        return left

    def term_factor(self) -> C.Term:
        stream = self.stream
        token = stream.current
        if token.kind in ("INT", "FLOAT", "STRING"):
            stream.advance()
            return C.Const(token.value)
        if stream.accept("OP", "-"):
            operand = self.term_factor()
            if isinstance(operand, C.Const) and isinstance(
                operand.value, (int, float)
            ):
                return C.Const(-operand.value)
            return C.ArithTerm("-", C.Const(0), _devar(operand))
        if stream.accept("OP", "("):
            inner = self.term()
            stream.expect("OP", ")")
            return inner
        if token.kind == "NAME":
            upper = token.value.upper()
            lower = token.value.lower()
            if upper in C.AGGREGATE_FUNCS:
                stream.advance()
                stream.expect("OP", "(")
                relation = stream.expect("NAME").value
                stream.expect("OP", ",")
                attr = self._attr()
                stream.expect("OP", ")")
                return C.AggTerm(upper, relation, attr)
            if upper in C.COUNTING_FUNCS:
                stream.advance()
                stream.expect("OP", "(")
                relation = stream.expect("NAME").value
                stream.expect("OP", ")")
                if upper == "CNT":
                    return C.CntTerm(relation)
                return C.MltTerm(relation)
            if lower == "true":
                stream.advance()
                return C.Const(True)
            if lower == "false":
                stream.advance()
                return C.Const(False)
            if lower == "null":
                stream.advance()
                from repro.engine.types import NULL

                return C.Const(NULL)
            if lower in _RESERVED:
                raise ParseError(
                    f"reserved word {token.value!r} cannot start a term "
                    f"(position {token.position})"
                )
            stream.advance()
            if stream.accept("OP", "."):
                attr = self._attr()
                return C.AttrSel(token.value, attr)
            return _BareVar(token.value)
        raise ParseError(
            f"expected a term at position {token.position}, "
            f"found {token.text or 'end of input'!r}"
        )

    def _attr(self):
        token = self.stream.current
        if token.kind == "NAME":
            self.stream.advance()
            return token.value
        if token.kind == "INT":
            self.stream.advance()
            return token.value
        raise ParseError(
            f"expected an attribute name or position at {token.position}"
        )


class _BareVar(C.Term):
    """Parser-internal: a bare variable awaiting tuple-equality context."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


def _devar(term: C.Term) -> C.Term:
    if isinstance(term, _BareVar):
        raise ParseError(
            f"tuple variable {term.name!r} cannot appear in arithmetic; "
            f"select an attribute (e.g. {term.name}.1)"
        )
    return term


def parse_constraint(text: str) -> C.Formula:
    """Parse a CL well-formed formula from text."""
    parser = _Parser(text)
    formula = parser.wff()
    parser.stream.expect_eof()
    return formula
