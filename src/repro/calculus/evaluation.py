"""Direct evaluation of CL constraints over database states.

This is the *semantic ground truth* of the reproduction: a straightforward
model-checking evaluator for range-restricted CL sentences.  It is used

* as the oracle in property-based tests (the translated algebra of
  Section 5.2.2 must agree with it on every database);
* as the "check after execute, roll back on violation" baseline that the
  transaction-modification benchmarks compare against;
* by :meth:`repro.core.subsystem.IntegrityController.violated_constraints`
  for post-hoc auditing of a database state.

Quantifiers range over the *active range* of their variable: the union of
all relations the variable is bound to by membership atoms in the
quantifier's scope.  For range-restricted sentences this coincides with the
standard semantics (tuples outside every mentioned relation can only satisfy
``x in R`` atoms negatively, so universals are vacuous and existentials
unwitnessed there); see ``tests/calculus/test_evaluation.py`` for the
equivalence checks.

Connectives are evaluated with short-circuiting, so guarded formulas never
evaluate attribute selections against tuples of the wrong relation type.

NULL semantics: comparisons involving NULL (including aggregates over empty
relations, which yield NULL for MIN/MAX/AVG) evaluate to *unknown*;
connectives and quantifiers follow Kleene three-valued logic; the top-level
verdict is **satisfied unless definitely violated** (unknown counts as
satisfied).  This matches the translated algebra's behaviour — a selection
keeps only definitely-violating tuples, so an unknown condition never fires
an alarm.  (As in SQL, existential checks over NULL-laden data can diverge
between the two evaluation styles; the paper predates NULL treatment and
the test suite pins the behaviour on NULL-free databases.)
"""

from __future__ import annotations

from typing import Dict

from repro.calculus import ast as C
from repro.calculus.analysis import check_constraint
from repro.engine.types import NULL
from repro.errors import EvaluationError


class _Env:
    """An immutable-ish variable binding chain (var -> (tuple, schema))."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: Dict[str, tuple]):
        self.bindings = bindings

    def bound(self, var: str, row: tuple, schema) -> "_Env":
        child = dict(self.bindings)
        child[var] = (row, schema)
        return _Env(child)

    def lookup(self, var: str):
        try:
            return self.bindings[var]
        except KeyError:
            raise EvaluationError(f"unbound tuple variable {var!r}") from None


def evaluate_constraint(formula: C.Formula, resolver, validate: bool = True) -> bool:
    """Evaluate a closed, range-restricted CL formula.

    ``resolver`` is anything with ``resolve(name) -> Relation`` — a
    transaction context, a :class:`~repro.engine.session.DatabaseView`, or a
    :class:`~repro.algebra.evaluation.StandaloneContext`.

    Returns the "satisfied unless definitely violated" verdict (see module
    docs); :func:`evaluate_three_valued` exposes the raw Kleene value.
    """
    return evaluate_three_valued(formula, resolver, validate=validate) is not False


def evaluate_three_valued(formula: C.Formula, resolver, validate: bool = True):
    """Kleene evaluation: returns True, False, or None (unknown)."""
    if validate:
        check_constraint(formula)
    return _eval(formula, resolver, _Env({}))


def _eval(node: C.Formula, resolver, env: _Env):
    if isinstance(node, C.Compare):
        left = _eval_term(node.left, resolver, env)
        right = _eval_term(node.right, resolver, env)
        return _compare(node.op, left, right)
    if isinstance(node, C.Member):
        row, _ = env.lookup(node.var)
        return row in resolver.resolve(node.relation)
    if isinstance(node, C.TupleEq):
        left_row, _ = env.lookup(node.left)
        right_row, _ = env.lookup(node.right)
        return left_row == right_row
    if isinstance(node, C.Not):
        value = _eval(node.operand, resolver, env)
        return None if value is None else not value
    if isinstance(node, C.And):
        left = _eval(node.left, resolver, env)
        if left is False:
            return False
        right = _eval(node.right, resolver, env)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if isinstance(node, C.Or):
        left = _eval(node.left, resolver, env)
        if left is True:
            return True
        right = _eval(node.right, resolver, env)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    if isinstance(node, C.Implies):
        return _eval(C.Or(C.Not(node.left), node.right), resolver, env)
    if isinstance(node, C.Forall):
        unknown = False
        for row, schema in _active_range(node, resolver):
            value = _eval(node.body, resolver, env.bound(node.var, row, schema))
            if value is False:
                return False
            if value is None:
                unknown = True
        return None if unknown else True
    if isinstance(node, C.Exists):
        unknown = False
        for row, schema in _active_range(node, resolver):
            value = _eval(node.body, resolver, env.bound(node.var, row, schema))
            if value is True:
                return True
            if value is None:
                unknown = True
        return None if unknown else False
    raise EvaluationError(f"unknown formula node {node!r}")


def _active_range(node, resolver):
    """(row, schema) candidates for a quantified variable.

    The union of all relations the variable is membership-bound to within
    the quantifier scope, deduplicated across relations.
    """
    relations = _scope_relations(node.body, node.var)
    if not relations:
        raise EvaluationError(
            f"variable {node.var!r} is not range-restricted"
        )
    seen = set()
    for name in sorted(relations):
        relation = resolver.resolve(name)
        schema = relation.schema
        for row in relation.rows():
            if row not in seen:
                seen.add(row)
                yield row, schema


def _scope_relations(node: C.Formula, var: str) -> set:
    if isinstance(node, C.Member):
        return {node.relation} if node.var == var else set()
    if isinstance(node, C.Not):
        return _scope_relations(node.operand, var)
    if isinstance(node, (C.And, C.Or, C.Implies)):
        return _scope_relations(node.left, var) | _scope_relations(node.right, var)
    if isinstance(node, (C.Forall, C.Exists)):
        if node.var == var:
            return set()
        return _scope_relations(node.body, var)
    return set()


def _eval_term(term: C.Term, resolver, env: _Env):
    if isinstance(term, C.Const):
        return term.value
    if isinstance(term, C.AttrSel):
        row, schema = env.lookup(term.var)
        if isinstance(term.attr, int):
            position = term.attr
            if not 1 <= position <= len(row):
                raise EvaluationError(
                    f"attribute position {position} out of range for "
                    f"{term.var!r} (arity {len(row)})"
                )
        else:
            position = schema.position_of(term.attr)
        return row[position - 1]
    if isinstance(term, C.ArithTerm):
        left = _eval_term(term.left, resolver, env)
        right = _eval_term(term.right, resolver, env)
        if left is NULL or right is NULL:
            return NULL
        if term.op == "+":
            return left + right
        if term.op == "-":
            return left - right
        if term.op == "*":
            return left * right
        if right == 0:
            raise EvaluationError("division by zero")
        if isinstance(left, int) and isinstance(right, int) and left % right == 0:
            return left // right
        return left / right
    if isinstance(term, C.AggTerm):
        relation = resolver.resolve(term.relation)
        position = relation.schema.position_of(term.attr) - 1
        values = [row[position] for row in relation if row[position] is not NULL]
        if term.func == "SUM":
            return sum(values) if values else 0
        if not values:
            return NULL
        if term.func == "AVG":
            return sum(values) / len(values)
        if term.func == "MIN":
            return min(values)
        return max(values)
    if isinstance(term, C.CntTerm):
        return len(resolver.resolve(term.relation))
    if isinstance(term, C.MltTerm):
        return resolver.resolve(term.relation).distinct_count()
    raise EvaluationError(f"unknown term node {term!r}")


def _compare(op: str, left, right):
    """NULL-aware comparison: any comparison involving NULL is unknown."""
    if left is NULL or right is NULL:
        return None
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == ">=":
        return left >= right
    if op == ">":
        return left > right
    raise EvaluationError(f"unknown comparison operator {op!r}")
