"""Plan-backed evaluation of CL constraints: one runtime engine for all.

:mod:`repro.calculus.evaluation` is the semantic ground truth — a
row-at-a-time model checker.  After PR 1 it was still the *runtime* engine
for every constraint outside the pure-alarm shape: compensating-action
rules, translation fallbacks, and post-hoc audits all paid model-checking
prices.  This module retires that slow path: any range-restricted CL
sentence is compiled **once per schema** through the paper's own pipeline —
``TransC``/``CalcToAlg`` (Algs 5.5-5.6) into algebra, then
:mod:`repro.algebra.planner` into cached physical plans — and evaluated by
executing those plans against whatever resolver is at hand (a
:class:`~repro.engine.session.DatabaseView`, a transaction context, ...).

Formulas the monolithic translator rejects are *decomposed* before giving
up: the compiler normalizes the top-level boolean structure (De Morgan,
implication expansion, quantifier negation pushing) and recursively
compiles the closed subformulas, so e.g. a conjunction of two universals —
untranslatable as a whole — becomes two physical plans combined with a
short-circuiting boolean ``and``.  Only the genuinely untranslatable
residue falls back to the model checker, and the compiled artifact reports
that via :attr:`CompiledConstraint.fully_planned`.

Verdict semantics match the translated algebra: *satisfied unless
definitely violated* (an ``alarm``-form plan fires exactly on definite
violations).  Boolean recombination of leaf verdicts preserves that
top-level verdict: collapsing Kleene *unknown* to *satisfied* at the leaves
commutes with ``and``/``or`` (both are monotone, and negations are pushed
into the leaves before compilation).  The NULL-laden corners where alarm
form and model checker can diverge are the same ones PR 1 documented; the
property suite pins agreement on NULL-free databases.

The per-schema cache is keyed on formula structure (formulas are frozen
dataclasses) and held weakly per :class:`~repro.engine.schema.
DatabaseSchema`; entries remember the schema's DDL version and recompile
after ``add_relation``-style changes.
"""

from __future__ import annotations

import weakref
from typing import List

from repro.calculus import ast as C
from repro.calculus.evaluation import evaluate_constraint
from repro.errors import TranslationError

# ---------------------------------------------------------------------------
# Compiled node tree
# ---------------------------------------------------------------------------


class _Node:
    """A compiled verdict node: ``satisfied(resolver) -> bool``."""

    __slots__ = ()
    fully_planned = True

    def satisfied(self, resolver) -> bool:
        raise NotImplementedError

    def leaves(self):
        yield self


class _PlanLeaf(_Node):
    """A translatable subformula, evaluated by its compiled physical plan.

    ``expr`` is the alarm argument TransC produced: non-empty exactly when
    the subformula is definitely violated.
    """

    __slots__ = ("formula", "expr")

    def __init__(self, formula: C.Formula, expr):
        self.formula = formula
        self.expr = expr

    def satisfied(self, resolver) -> bool:
        from repro.algebra import planner

        return len(planner.evaluate(self.expr, resolver, engine="planned")) == 0


class _NaiveLeaf(_Node):
    """Untranslatable residue: the model checker remains the evaluator."""

    __slots__ = ("formula",)
    fully_planned = False

    def __init__(self, formula: C.Formula):
        self.formula = formula

    def satisfied(self, resolver) -> bool:
        return evaluate_constraint(self.formula, resolver, validate=False)


class _BoolNode(_Node):
    __slots__ = ("children",)

    def __init__(self, children: List[_Node]):
        self.children = children

    @property
    def fully_planned(self) -> bool:
        return all(child.fully_planned for child in self.children)

    def leaves(self):
        for child in self.children:
            yield from child.leaves()


class _AndNode(_BoolNode):
    def satisfied(self, resolver) -> bool:
        return all(child.satisfied(resolver) for child in self.children)


class _OrNode(_BoolNode):
    def satisfied(self, resolver) -> bool:
        return any(child.satisfied(resolver) for child in self.children)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def _compile_node(formula: C.Formula, db) -> _Node:
    """Compile one closed subformula (see module docs for the strategy)."""
    from repro.algebra.statements import Alarm
    from repro.core.translation import _trans_c_statement

    try:
        statement = _trans_c_statement(formula, db, None)
    except TranslationError:
        statement = None
    if isinstance(statement, Alarm):
        return _PlanLeaf(formula, statement.expr)
    # The whole formula is outside the monolithic translator's fragment:
    # normalize the top-level boolean structure and compile the pieces.
    # Subformulas of a closed connective are themselves closed, so each
    # recursion stays a well-formed constraint.
    if isinstance(formula, C.And):
        return _AndNode(
            [_compile_node(formula.left, db), _compile_node(formula.right, db)]
        )
    if isinstance(formula, C.Or):
        return _OrNode(
            [_compile_node(formula.left, db), _compile_node(formula.right, db)]
        )
    if isinstance(formula, C.Implies):
        return _compile_node(C.Or(C.Not(formula.left), formula.right), db)
    if isinstance(formula, C.Not):
        operand = formula.operand
        # Push the negation one level (exact in Kleene logic), then retry.
        if isinstance(operand, C.Not):
            return _compile_node(operand.operand, db)
        if isinstance(operand, C.And):
            return _compile_node(
                C.Or(C.Not(operand.left), C.Not(operand.right)), db
            )
        if isinstance(operand, C.Or):
            return _compile_node(
                C.And(C.Not(operand.left), C.Not(operand.right)), db
            )
        if isinstance(operand, C.Implies):
            return _compile_node(
                C.And(operand.left, C.Not(operand.right)), db
            )
        if isinstance(operand, C.Forall):
            return _compile_node(
                C.Exists(operand.var, C.Not(operand.body)), db
            )
        if isinstance(operand, C.Exists):
            return _compile_node(
                C.Forall(operand.var, C.Not(operand.body)), db
            )
    if isinstance(formula, (C.Exists, C.Forall)):
        # Last chance before the model checker: miniscope the normalized
        # formula.  Pulling bound-variable-free conjuncts out of
        # existentials (∃x(A ∧ B(x)) ⇒ A ∧ ∃x B(x)) can expose top-level
        # boolean structure the decomposition above then splits into
        # independently-plannable pieces — e.g. an existential whose body
        # carries a closed quantified conjunct.  NNF and miniscoping are
        # exact in Kleene semantics, so leaf verdicts recombine unchanged.
        from repro.core.translation import miniscope, nnf

        try:
            normalized = miniscope(nnf(formula))
        except TranslationError:
            normalized = None
        if normalized is not None and normalized != formula and isinstance(
            normalized, (C.And, C.Or)
        ):
            return _compile_node(normalized, db)
    return _NaiveLeaf(formula)


class CompiledConstraint:
    """A CL sentence compiled for plan-backed evaluation."""

    __slots__ = ("formula", "root", "schema_version")

    def __init__(self, formula: C.Formula, root: _Node, schema_version: int):
        self.formula = formula
        self.root = root
        self.schema_version = schema_version

    @property
    def fully_planned(self) -> bool:
        """True when no subformula needs the naive model checker."""
        return self.root.fully_planned

    def plan_count(self) -> int:
        return sum(
            1 for leaf in self.root.leaves() if isinstance(leaf, _PlanLeaf)
        )

    def plan_expressions(self):
        """The algebra expressions behind the plan leaves (for cost
        estimation and index advice on fallback constraints)."""
        for leaf in self.root.leaves():
            if isinstance(leaf, _PlanLeaf):
                yield leaf.expr

    def conjunctive_plan_expressions(self):
        """The plan-leaf alarm expressions, when the decomposition is a pure
        conjunction of planned leaves — else None.

        This is the shape differential specialization can incrementalize
        per-leaf: pre-state correctness of the whole formula distributes
        over ``and`` (every conjunct held before the transaction), so each
        leaf's violation expression satisfies the Def 3.5 premise on its
        own.  Disjunctions do not distribute that way, and naive residue
        has no plan to rewrite, so both return None.
        """
        expressions: List = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, _PlanLeaf):
                expressions.append(node.expr)
            elif isinstance(node, _AndNode):
                stack.extend(node.children)
            else:
                return None
        expressions.reverse()
        return expressions

    def residue(self) -> List[C.Formula]:
        """The untranslatable subformulas still evaluated naively."""
        return [
            leaf.formula
            for leaf in self.root.leaves()
            if isinstance(leaf, _NaiveLeaf)
        ]

    def satisfied(self, resolver) -> bool:
        """The *satisfied unless definitely violated* verdict."""
        return self.root.satisfied(resolver)

    def violated(self, resolver) -> bool:
        return not self.root.satisfied(resolver)

    def __repr__(self) -> str:
        kind = "fully planned" if self.fully_planned else "partial"
        return (
            f"CompiledConstraint({self.plan_count()} plans, "
            f"{len(self.residue())} naive, {kind})"
        )


# ---------------------------------------------------------------------------
# The per-schema constraint cache
# ---------------------------------------------------------------------------

# DatabaseSchema (weak) -> {formula: CompiledConstraint}.  Formula keys are
# frozen dataclasses, so structurally equal constraints share one compiled
# artifact; the per-schema dict is bounded FIFO like the planner's cache.
_COMPILED: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_CACHE_LIMIT_PER_SCHEMA = 512
_cache_hits = 0
_cache_misses = 0


def compile_constraint(formula: C.Formula, db) -> CompiledConstraint:
    """The cached compiled form of ``formula`` under schema ``db``."""
    global _cache_hits, _cache_misses
    per_schema = _COMPILED.get(db)
    if per_schema is None:
        per_schema = {}
        _COMPILED[db] = per_schema
    version = getattr(db, "version", 0)
    cached = per_schema.get(formula)
    if cached is not None and cached.schema_version == version:
        _cache_hits += 1
        return cached
    _cache_misses += 1
    compiled = CompiledConstraint(formula, _compile_node(formula, db), version)
    if len(per_schema) >= _CACHE_LIMIT_PER_SCHEMA:
        per_schema.pop(next(iter(per_schema)))
    per_schema[formula] = compiled
    return compiled


def evaluate_constraint_planned(
    formula: C.Formula, resolver, db=None
) -> bool:
    """Plan-backed counterpart of :func:`~repro.calculus.evaluation.
    evaluate_constraint` (same verdict convention).

    ``db`` is the :class:`~repro.engine.schema.DatabaseSchema` to compile
    against; when omitted it is discovered from the resolver's ``database``
    attribute.  Without a schema in reach (bare standalone contexts) the
    naive evaluator answers directly.
    """
    if db is None:
        db = getattr(getattr(resolver, "database", None), "schema", None)
    if db is None:
        return evaluate_constraint(formula, resolver, validate=False)
    return compile_constraint(formula, db).satisfied(resolver)


def clear_constraint_cache() -> None:
    global _cache_hits, _cache_misses
    _COMPILED.clear()
    _cache_hits = 0
    _cache_misses = 0


def constraint_cache_info() -> dict:
    return {
        "schemas": len(_COMPILED),
        "size": sum(len(per) for per in _COMPILED.values()),
        "hits": _cache_hits,
        "misses": _cache_misses,
        "limit_per_schema": _CACHE_LIMIT_PER_SCHEMA,
    }
