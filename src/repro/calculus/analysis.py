"""Static analyses over CL formulas.

Three analyses matter to the rest of the system:

* **free variables / closedness** — an integrity constraint must be a
  *sentence* (no free tuple variables), otherwise its truth value over a
  database state is not defined;
* **safety (range restriction)** — every quantified variable must be bound
  by at least one membership atom ``x in R`` within the quantifier's scope.
  Both the direct evaluator and the calculus-to-algebra translation rely on
  this: quantification is over relations, never over an unbounded domain
  (the paper's CL examples and Table 1 are all range-restricted);
* **variable ranges** — the relations each variable is bound to, used for
  attribute-name resolution and by the trigger-set generator.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.calculus import ast as C
from repro.errors import AnalysisError, UnsafeFormulaError


def term_variables(term: C.Term) -> Set[str]:
    """Variables occurring in a term."""
    if isinstance(term, C.AttrSel):
        return {term.var}
    if isinstance(term, C.ArithTerm):
        return term_variables(term.left) | term_variables(term.right)
    return set()


def free_variables(formula: C.Formula) -> Set[str]:
    """The free tuple variables of a formula."""
    if isinstance(formula, C.Compare):
        return term_variables(formula.left) | term_variables(formula.right)
    if isinstance(formula, C.Member):
        return {formula.var}
    if isinstance(formula, C.TupleEq):
        return {formula.left, formula.right}
    if isinstance(formula, C.Not):
        return free_variables(formula.operand)
    if isinstance(formula, (C.And, C.Or, C.Implies)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (C.Forall, C.Exists)):
        return free_variables(formula.body) - {formula.var}
    raise AnalysisError(f"unknown formula node {formula!r}")


def check_closed(formula: C.Formula) -> None:
    """Raise AnalysisError when the formula has free variables."""
    free = free_variables(formula)
    if free:
        names = ", ".join(sorted(free))
        raise AnalysisError(
            f"integrity constraint must be closed; free variable(s): {names}"
        )


def relation_names(formula: C.Formula) -> Set[str]:
    """All relation names mentioned (memberships, aggregates, counts)."""
    found: Set[str] = set()
    for sub in C.iter_subformulas(formula):
        if isinstance(sub, C.Member):
            found.add(sub.relation)
    for term in C.iter_terms(formula):
        if isinstance(term, C.AggTerm):
            found.add(term.relation)
        elif isinstance(term, (C.CntTerm, C.MltTerm)):
            found.add(term.relation)
    return found


def variable_ranges(formula: C.Formula) -> Dict[str, Set[str]]:
    """Map each variable to the relations it is bound to by memberships.

    Shadowing is handled: a membership atom contributes to the innermost
    enclosing quantifier of its variable.
    """
    ranges: Dict[str, Set[str]] = {}

    def visit(node: C.Formula) -> None:
        if isinstance(node, C.Member):
            ranges.setdefault(node.var, set()).add(node.relation)
        elif isinstance(node, C.Not):
            visit(node.operand)
        elif isinstance(node, (C.And, C.Or, C.Implies)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, (C.Forall, C.Exists)):
            visit(node.body)

    visit(formula)
    return ranges


def check_safety(formula: C.Formula) -> None:
    """Raise UnsafeFormulaError unless the formula is range-restricted.

    The check: every quantified variable must occur in at least one
    membership atom ``var in R`` *within the quantifier's scope* (with
    correct shadowing).  This is the weak-safety condition sufficient for
    the active-range evaluation of :mod:`repro.calculus.evaluation`; the
    translation of Section 5.2.2 additionally pattern-matches guard shapes
    and reports its own errors when a formula is too exotic to translate.
    """

    def visit(node: C.Formula) -> None:
        if isinstance(node, (C.Forall, C.Exists)):
            if not _has_membership(node.body, node.var):
                raise UnsafeFormulaError(
                    f"quantified variable {node.var!r} has no membership "
                    f"atom '{node.var} in R' in its scope"
                )
            visit(node.body)
        elif isinstance(node, C.Not):
            visit(node.operand)
        elif isinstance(node, (C.And, C.Or, C.Implies)):
            visit(node.left)
            visit(node.right)

    visit(formula)


def _has_membership(node: C.Formula, var: str) -> bool:
    if isinstance(node, C.Member):
        return node.var == var
    if isinstance(node, C.Not):
        return _has_membership(node.operand, var)
    if isinstance(node, (C.And, C.Or, C.Implies)):
        return _has_membership(node.left, var) or _has_membership(node.right, var)
    if isinstance(node, (C.Forall, C.Exists)):
        if node.var == var:  # shadowed: memberships below bind the inner var
            return False
        return _has_membership(node.body, var)
    return False


def check_constraint(formula: C.Formula) -> None:
    """Full static validation of an integrity constraint."""
    check_closed(formula)
    check_safety(formula)


def quantifier_depth(formula: C.Formula) -> int:
    """Maximum quantifier nesting depth (used by benchmarks and tests)."""
    if isinstance(formula, (C.Forall, C.Exists)):
        return 1 + quantifier_depth(formula.body)
    if isinstance(formula, C.Not):
        return quantifier_depth(formula.operand)
    if isinstance(formula, (C.And, C.Or, C.Implies)):
        return max(quantifier_depth(formula.left), quantifier_depth(formula.right))
    return 0
