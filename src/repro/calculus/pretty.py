"""Rendering CL formulas back to text.

Two styles: the default ASCII form (parseable — round-trip property tested)
and the paper's symbol form (``∀ ∃ ∧ ∨ ¬ ⇒ ∈``) for report output.
Bounded-quantifier sugar is re-introduced when the body has the guard shape,
so ``Forall(x, Implies(Member(x, R), W))`` renders as
``(forall x in R)(W)``.
"""

from __future__ import annotations

from repro.calculus import ast as C
from repro.engine.types import NULL

_ASCII = {
    "forall": "forall",
    "exists": "exists",
    "and": " and ",
    "or": " or ",
    "not": "not ",
    "implies": " => ",
    "in": " in ",
    "!=": "!=",
    "<=": "<=",
    ">=": ">=",
}
_SYMBOLS = {
    "forall": "∀",
    "exists": "∃",
    "and": " ∧ ",
    "or": " ∨ ",
    "not": "¬",
    "implies": " ⇒ ",
    "in": " ∈ ",
    "!=": "≠",
    "<=": "≤",
    ">=": "≥",
}


def render_constraint(formula: C.Formula, symbols: bool = False) -> str:
    """Render a CL formula; ``symbols=True`` gives the paper's notation."""
    style = _SYMBOLS if symbols else _ASCII
    return _render(formula, style, top=True)


def _render(node: C.Formula, style: dict, top: bool = False) -> str:
    if isinstance(node, C.Forall):
        return _render_quantifier(node, "forall", style)
    if isinstance(node, C.Exists):
        return _render_quantifier(node, "exists", style)
    if isinstance(node, C.Implies):
        left = _render(node.left, style)
        right = _render(node.right, style)
        text = f"{left}{style['implies']}{right}"
        return text if top else f"({text})"
    if isinstance(node, C.And):
        text = f"{_render(node.left, style)}{style['and']}{_render(node.right, style)}"
        return text if top else f"({text})"
    if isinstance(node, C.Or):
        text = f"{_render(node.left, style)}{style['or']}{_render(node.right, style)}"
        return text if top else f"({text})"
    if isinstance(node, C.Not):
        return f"{style['not']}{_render(node.operand, style)}"
    if isinstance(node, C.Member):
        return f"{node.var}{style['in']}{node.relation}"
    if isinstance(node, C.TupleEq):
        return f"{node.left} = {node.right}"
    if isinstance(node, C.Compare):
        op = style.get(node.op, node.op)
        return f"{_render_term(node.left)} {op} {_render_term(node.right)}"
    raise TypeError(f"cannot render formula {node!r}")


def _render_quantifier(node, kind: str, style: dict) -> str:
    word = style[kind]
    space = "" if word in ("∀", "∃") else " "
    # Re-sugar the guard shape into a bounded quantifier.
    body = node.body
    if kind == "forall" and isinstance(body, C.Implies) and _is_guard(body.left, node.var):
        inner = _render(body.right, style, top=True)
        return f"({word}{space}{node.var}{style['in']}{body.left.relation})({inner})"
    if kind == "exists" and isinstance(body, C.And) and _is_guard(body.left, node.var):
        inner = _render(body.right, style, top=True)
        return f"({word}{space}{node.var}{style['in']}{body.left.relation})({inner})"
    return f"({word}{space}{node.var})({_render(body, style, top=True)})"


def _is_guard(node: C.Formula, var: str) -> bool:
    return isinstance(node, C.Member) and node.var == var


def _render_term(term: C.Term) -> str:
    if isinstance(term, C.Const):
        if term.value is NULL:
            return "null"
        if isinstance(term.value, bool):
            return "true" if term.value else "false"
        if isinstance(term.value, str):
            escaped = term.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(term.value)
    if isinstance(term, C.AttrSel):
        return f"{term.var}.{term.attr}"
    if isinstance(term, C.ArithTerm):
        return f"({_render_term(term.left)} {term.op} {_render_term(term.right)})"
    if isinstance(term, C.AggTerm):
        return f"{term.func}({term.relation}, {term.attr})"
    if isinstance(term, C.CntTerm):
        return f"CNT({term.relation})"
    if isinstance(term, C.MltTerm):
        return f"MLT({term.relation})"
    raise TypeError(f"cannot render term {term!r}")
