"""AST of the constraint language CL (paper Definitions 4.1-4.4).

The node set mirrors the paper exactly:

* **terms** (Def 4.2): value constants, attribute selections ``x.i`` /
  ``x.name``, arithmetic function applications, aggregate function
  applications ``SUM/AVG/MIN/MAX(R, i)``, counting applications ``CNT(R)``
  (and ``MLT(R)`` from the multiset extension, which Alg 5.7 already
  mentions);
* **atomic formulas** (Def 4.3): arithmetic comparisons, set membership
  ``x in R``, tuple value comparisons ``x = y``;
* **well-formed formulas** (Def 4.4): atoms, negation, the binary
  connectives ``and/or/=>``, and quantifications.

All nodes are frozen dataclasses, so formulas are hashable values with
structural equality — the trigger-generation and translation tests depend on
this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union as TypingUnion


class Term:
    """Base class for CL terms."""

    __slots__ = ()


class Formula:
    """Base class for CL well-formed formulas (atoms included)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Terms (Def 4.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const(Term):
    """A value constant from the set C."""

    value: object


@dataclass(frozen=True)
class AttrSel(Term):
    """An attribute selection ``x.i`` (1-based position) or ``x.name``."""

    var: str
    attr: TypingUnion[int, str]


@dataclass(frozen=True)
class ArithTerm(Term):
    """An arithmetic function application (FV = {+, -, *, /})."""

    op: str
    left: Term
    right: Term


@dataclass(frozen=True)
class AggTerm(Term):
    """An aggregate function application ``FUNC(R, i)`` (FA, type M x C -> C)."""

    func: str  # SUM | AVG | MIN | MAX
    relation: str
    attr: TypingUnion[int, str]


@dataclass(frozen=True)
class CntTerm(Term):
    """A counting function application ``CNT(R)`` (FC, type M -> C)."""

    relation: str


@dataclass(frozen=True)
class MltTerm(Term):
    """``MLT(R)``: distinct-tuple count (multiset extension; see Alg 5.7)."""

    relation: str


# ---------------------------------------------------------------------------
# Atomic formulas (Def 4.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Compare(Formula):
    """An arithmetic comparison ``T1 op T2`` with op in PV."""

    op: str  # < | <= | = | != | >= | >
    left: Term
    right: Term


@dataclass(frozen=True)
class Member(Formula):
    """A set membership expression ``x in R`` (PM)."""

    var: str
    relation: str


@dataclass(frozen=True)
class TupleEq(Formula):
    """A tuple value comparison ``x = y`` (PT)."""

    left: str
    right: str


# ---------------------------------------------------------------------------
# Well-formed formulas (Def 4.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Forall(Formula):
    var: str
    body: Formula


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    body: Formula


AGGREGATE_FUNCS = ("SUM", "AVG", "MIN", "MAX")
COUNTING_FUNCS = ("CNT", "MLT")


def forall_in(var: str, relation: str, body: Formula) -> Forall:
    """The bounded-quantifier sugar ``(forall x in R)(W)``.

    Desugars to the paper's idiom ``(forall x)(x in R => W)``.
    """
    return Forall(var, Implies(Member(var, relation), body))


def exists_in(var: str, relation: str, body: Formula) -> Exists:
    """The bounded-quantifier sugar ``(exists x in R)(W)``.

    Desugars to ``(exists x)(x in R and W)``.
    """
    return Exists(var, And(Member(var, relation), body))


def conjoin(*formulas: Formula) -> Formula:
    """Left-nested conjunction of one or more formulas."""
    if not formulas:
        raise ValueError("conjoin needs at least one formula")
    result = formulas[0]
    for formula in formulas[1:]:
        result = And(result, formula)
    return result


def iter_subformulas(formula: Formula):
    """Pre-order iteration over all subformulas (atoms included)."""
    yield formula
    if isinstance(formula, Not):
        yield from iter_subformulas(formula.operand)
    elif isinstance(formula, (And, Or, Implies)):
        yield from iter_subformulas(formula.left)
        yield from iter_subformulas(formula.right)
    elif isinstance(formula, (Forall, Exists)):
        yield from iter_subformulas(formula.body)


def iter_terms(formula: Formula):
    """All terms appearing in atomic formulas of ``formula``."""
    for sub in iter_subformulas(formula):
        if isinstance(sub, Compare):
            yield from _iter_term_tree(sub.left)
            yield from _iter_term_tree(sub.right)


def _iter_term_tree(term: Term):
    yield term
    if isinstance(term, ArithTerm):
        yield from _iter_term_tree(term.left)
        yield from _iter_term_tree(term.right)
