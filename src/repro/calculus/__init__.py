"""The constraint specification language CL (paper Section 4.1).

CL is a tuple relational calculus: terms (value constants, attribute
selections ``x.i``, arithmetic, aggregate and counting function
applications), atomic formulas (comparisons, set membership ``x in R``,
tuple equality), and well-formed formulas built with ``not/and/or/=>`` and
the quantifiers ``forall``/``exists`` (paper Defs 4.1-4.4).

Submodules:

* :mod:`repro.calculus.ast` — the formula AST;
* :mod:`repro.calculus.parser` — text form (ASCII and the paper's Unicode
  symbols both accepted);
* :mod:`repro.calculus.analysis` — free variables, closedness, safety
  (range restriction), variable typing;
* :mod:`repro.calculus.evaluation` — the direct evaluator: the ground-truth
  integrity checker kept as the *test oracle* and the evaluator of last
  resort for untranslatable residue;
* :mod:`repro.calculus.planned` — the plan-backed evaluator: compiles any
  range-restricted sentence through TransC/CalcToAlg into cached physical
  plans — the single runtime evaluation path;
* :mod:`repro.calculus.pretty` — rendering back to CL text.
"""

from repro.calculus.ast import (
    AggTerm,
    And,
    ArithTerm,
    AttrSel,
    CntTerm,
    Compare,
    Const,
    Exists,
    Forall,
    Implies,
    Member,
    MltTerm,
    Not,
    Or,
    TupleEq,
)
from repro.calculus.parser import parse_constraint
from repro.calculus.analysis import (
    check_closed,
    check_safety,
    free_variables,
    relation_names,
    variable_ranges,
)
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.planned import (
    CompiledConstraint,
    compile_constraint,
    evaluate_constraint_planned,
)
from repro.calculus.pretty import render_constraint

__all__ = [
    "AggTerm",
    "And",
    "ArithTerm",
    "AttrSel",
    "CntTerm",
    "Compare",
    "Const",
    "Exists",
    "Forall",
    "Implies",
    "Member",
    "MltTerm",
    "Not",
    "Or",
    "TupleEq",
    "CompiledConstraint",
    "check_closed",
    "check_safety",
    "compile_constraint",
    "evaluate_constraint",
    "evaluate_constraint_planned",
    "free_variables",
    "parse_constraint",
    "relation_names",
    "render_constraint",
    "variable_ranges",
]
