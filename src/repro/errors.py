"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the layers of
the system: schema/engine errors, language (parse/analysis) errors,
transaction outcomes, and integrity-subsystem errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Engine layer
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A schema definition is invalid (duplicate names, bad domain, ...)."""


class TypeMismatchError(ReproError):
    """A value or expression does not match the expected domain/type."""


class UnknownRelationError(ReproError):
    """A referenced relation does not exist in the database (or context)."""

    def __init__(self, name: str, context: str = "database"):
        super().__init__(f"unknown relation {name!r} in {context}")
        self.name = name


class UnknownAttributeError(ReproError):
    """A referenced attribute does not exist in a relation schema."""

    def __init__(self, attribute: object, relation: str = "?"):
        super().__init__(f"unknown attribute {attribute!r} of relation {relation!r}")
        self.attribute = attribute
        self.relation = relation


class DuplicateRelationError(SchemaError):
    """A relation with the same name already exists."""


class WalError(ReproError):
    """A durable commit-log operation failed (I/O, missing checkpoint, ...)."""


class EpochUnavailableError(ReproError):
    """A pinned epoch's reconstruction window was reclaimed.

    Raised when a reader asks for a fresh snapshot view of an epoch whose
    retained differentials were already garbage-collected — only possible
    after the pin was released (or quiesced away by an out-of-band bulk
    load).  Already-materialized snapshot relations are never affected.
    """

    def __init__(self, epoch: int):
        super().__init__(f"epoch #{epoch} is no longer reconstructible")
        self.epoch = epoch


class WalCorruptionError(WalError):
    """The durable commit log is corrupt beyond tail repair.

    Raised when a record in a *sealed* region fails its CRC, when a
    record's stored predecessor hash does not match the chain, or when a
    segment header is damaged — i.e. whenever recovery cannot prove the
    surviving prefix is exactly some commit boundary.  Carries the segment
    file name and byte offset of the first broken link.
    """

    def __init__(self, segment: str, offset: int, reason: str):
        super().__init__(f"{segment} @ byte {offset}: {reason}")
        self.segment = segment
        self.offset = offset
        self.reason = reason


# ---------------------------------------------------------------------------
# Language layer (CL constraint calculus, RL rules, algebra text forms)
# ---------------------------------------------------------------------------


class LanguageError(ReproError):
    """Base class for lexing/parsing/analysis errors."""


class LexError(LanguageError):
    """Invalid token in an input text."""

    def __init__(self, message: str, position: int, text: str):
        snippet = text[max(0, position - 20) : position + 20]
        super().__init__(f"{message} at position {position}: ...{snippet!r}...")
        self.position = position


class ParseError(LanguageError):
    """Input text does not conform to the grammar."""


class AnalysisError(LanguageError):
    """A well-formed formula fails a static check (safety, typing, scope)."""


class UnsafeFormulaError(AnalysisError):
    """A CL formula is not range-restricted (quantifier without a range)."""


class EvaluationError(ReproError):
    """A runtime error while evaluating an algebra or calculus expression
    (division by zero, aggregate over an empty relation, ...)."""


# ---------------------------------------------------------------------------
# Transaction layer
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction-execution problems."""


class TransactionAborted(TransactionError):
    """Raised internally to signal a transaction abort.

    User code normally observes aborts through
    :class:`repro.engine.transaction.TransactionResult`; this exception is the
    internal control-flow signal (raised by the ``abort`` statement and by
    ``alarm`` statements whose argument is non-empty).
    """

    def __init__(self, reason: str = "transaction aborted"):
        super().__init__(reason)
        self.reason = reason


class NoActiveTransactionError(TransactionError):
    """An operation that requires an open transaction found none."""


class NestedTransactionError(TransactionError):
    """A transaction was started while another one was active."""


# ---------------------------------------------------------------------------
# Integrity subsystem
# ---------------------------------------------------------------------------


class IntegrityError(ReproError):
    """Base class for integrity-subsystem errors."""


class ConstraintViolation(IntegrityError):
    """A constraint check failed (used by the direct-evaluation checker)."""

    def __init__(self, constraint_name: str, detail: str = ""):
        message = f"constraint {constraint_name!r} violated"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.constraint_name = constraint_name


class TriggerCycleError(IntegrityError):
    """The triggering graph of a rule set contains a cycle (Def 6.1)."""

    def __init__(self, cycles: list):
        names = "; ".join(" -> ".join(cycle) for cycle in cycles)
        super().__init__(f"triggering graph contains cycle(s): {names}")
        self.cycles = cycles


class RuleError(IntegrityError):
    """An integrity rule is malformed or cannot be translated."""


class TranslationError(IntegrityError):
    """A CL condition cannot be translated to the extended algebra."""


class FragmentationError(ReproError):
    """A fragmentation specification is invalid or inconsistent."""
