"""Materialized view maintenance via transaction modification.

Section 7 of the paper notes that "transaction modification can be used for
purposes other than integrity control as well, like materialized view
maintenance" (with the details in Grefen's thesis [8]).  This package
demonstrates the claim: a view definition is compiled into a *maintenance
program* — a non-triggering extended-algebra program appended to every
transaction that updates the view's base relations, exactly like an
integrity program but refreshing a stored relation instead of checking a
condition.
"""

from repro.views.materialized import MaterializedView, ViewManager

__all__ = ["MaterializedView", "ViewManager"]
