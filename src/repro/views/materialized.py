"""Materialized views maintained by transaction modification.

A view ``V = E(R1, ..., Rk)`` is stored as an ordinary base relation.  Its
*maintenance program* is registered in the integrity program store with
trigger set ``{INS(Ri), DEL(Ri) | i}``, so ``ModT`` appends it to every
transaction that updates a base relation of the view.  The program is
declared **non-triggering** (Def 6.2): refreshing a view must not trigger
integrity rules or other views' maintenance recursively — the paper's
cycle-suppression device doing double duty.

Two maintenance modes:

* ``recompute`` — evaluate the defining expression and replace the stored
  contents (always applicable);
* ``differential`` — for selection-shaped views ``σ_p(R)``, apply
  ``insert(V, σ_p(R@plus)); delete(V, σ_p(R@minus))`` — the transaction-
  modification analogue of incremental view maintenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.algebra import expressions as E
from repro.algebra import statements as S
from repro.algebra.evaluation import evaluate_expression
from repro.algebra.parser import parse_expression
from repro.algebra.programs import Program
from repro.core.programs import IntegrityProgram
from repro.core.subsystem import IntegrityController
from repro.core.triggers import DEL, INS
from repro.engine import naming
from repro.engine.database import Database
from repro.engine.schema import RelationSchema
from repro.engine.session import DatabaseView
from repro.errors import RuleError, UnknownRelationError


class MaterializedView:
    """A stored view plus its maintenance metadata."""

    def __init__(
        self,
        name: str,
        expression: E.Expression,
        mode: str,
        base_relations: tuple,
    ):
        self.name = name
        self.expression = expression
        self.mode = mode
        self.base_relations = base_relations

    def __repr__(self) -> str:
        return (
            f"MaterializedView({self.name}, mode={self.mode}, "
            f"over {list(self.base_relations)})"
        )


class ViewManager:
    """Defines views and registers their maintenance programs."""

    def __init__(self, database: Database, controller: IntegrityController):
        self.database = database
        self.controller = controller
        self.views: Dict[str, MaterializedView] = {}

    def define_view(
        self,
        name: str,
        expression: Union[str, E.Expression],
        mode: str = "auto",
    ) -> MaterializedView:
        """Create, populate, and register a materialized view.

        ``mode``: ``"differential"`` (selection views only), ``"recompute"``,
        or ``"auto"`` (differential when the shape allows).
        """
        if isinstance(expression, str):
            expression = parse_expression(expression)
        if name in self.database:
            raise RuleError(f"relation {name!r} already exists")
        base_relations = tuple(sorted(expression.relations()))
        for relation in base_relations:
            if naming.is_auxiliary(relation):
                raise RuleError("view definitions reference base relations only")
            if relation not in self.database:
                raise UnknownRelationError(relation, f"view {name!r}")

        # Materialize the initial contents and derive the stored schema.
        initial = evaluate_expression(expression, DatabaseView(self.database))
        stored_schema = RelationSchema(
            name,
            [
                type(attribute)(attribute.name, attribute.domain, attribute.nullable)
                for attribute in initial.schema.attributes
            ],
        )
        self.database.add_relation(stored_schema, initial.rows())

        chosen = self._choose_mode(expression, mode)
        program = self._maintenance_program(name, expression, chosen)
        triggers = frozenset(
            (kind, relation)
            for relation in base_relations
            for kind in (INS, DEL)
        )
        self.controller.store.add(
            IntegrityProgram(f"view::{name}", triggers, program)
        )
        view = MaterializedView(name, expression, chosen, base_relations)
        self.views[name] = view
        return view

    def drop_view(self, name: str) -> None:
        view = self.views.pop(name)
        self.controller.store.remove(f"view::{name}")
        # The stored relation stays in the schema (DDL removal is out of
        # scope for the engine); its maintenance stops here.
        del view

    # -- maintenance program construction ----------------------------------------

    @staticmethod
    def _choose_mode(expression: E.Expression, mode: str) -> str:
        differential_capable = isinstance(expression, E.Select) and isinstance(
            expression.input, E.RelationRef
        )
        if mode == "auto":
            return "differential" if differential_capable else "recompute"
        if mode == "differential" and not differential_capable:
            raise RuleError(
                "differential maintenance supports selection views "
                "select(R, p) only; use mode='recompute'"
            )
        if mode not in ("differential", "recompute"):
            raise RuleError(f"unknown view maintenance mode {mode!r}")
        return mode

    @staticmethod
    def _maintenance_program(
        name: str, expression: E.Expression, mode: str
    ) -> Program:
        if mode == "differential":
            base = expression.input.name
            predicate = expression.predicate
            statements = [
                S.Insert(
                    name,
                    E.Select(E.RelationRef(naming.plus_name(base)), predicate),
                ),
                S.Delete(
                    name,
                    E.Select(E.RelationRef(naming.minus_name(base)), predicate),
                ),
            ]
        else:
            temp = f"__view_{name}"
            statements = [
                S.Assign(temp, expression),
                S.Delete(name, E.RelationRef(name)),
                S.Insert(name, E.RelationRef(temp)),
            ]
        return Program(statements, non_triggering=True)

    def verify_view(self, name: str) -> bool:
        """Audit: stored contents equal the recomputed expression."""
        view = self.views[name]
        current = evaluate_expression(view.expression, DatabaseView(self.database))
        stored = self.database.relation(name)
        return stored.to_set() == current.to_set()
