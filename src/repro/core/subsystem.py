"""The integrity controller: the transaction modification subsystem facade.

This is the component a DBMS architecture plugs in front of its transaction
manager (the paper's §7: "the technique can easily be mapped to an abstract
DBMS system architecture").  It owns the rule catalog, compiles rules to
integrity programs at definition time (static mode, §6.2) or translates on
demand (dynamic mode, Alg 5.1-5.3), validates triggering behaviour
(§6.1), and exposes ``modify_transaction`` — the hook
:class:`~repro.engine.transaction.TransactionManager` calls.

Typical use::

    controller = IntegrityController(db.schema)
    controller.add_constraint(
        "beer_alcohol", "(forall x in beer)(x.alcohol >= 0)")
    controller.add_rule('''
        RULE beer_fk
        IF NOT (forall x in beer)
               (exists y in brewery)(x.brewery = y.name)
        THEN temp := diff(project(beer, [brewery]), project(brewery, [name]));
             insert(brewery, project(temp, [brewery as name, null, null]))
    ''')
    session = Session(db, controller)
    session.execute('begin insert(beer, (...)); end')
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Union

from repro.algebra import planner
from repro.algebra.evaluation import evaluate_expression
from repro.algebra.parser import parse_program
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm, Assign
from repro.calculus import ast as C
from repro.calculus.analysis import relation_names, variable_ranges
from repro.calculus.evaluation import evaluate_constraint
from repro.calculus.parser import parse_constraint
from repro.calculus.planned import compile_constraint
from repro.core.modification import (
    DynamicSelector,
    ModificationStats,
    StaticSelector,
    mod_t,
)
from repro.core.programs import IntegrityProgramStore, get_int_p
from repro.core.rule_language import parse_rule
from repro.core.rules import ABORT_ACTION, IntegrityRule
from repro.core.translation import CheckConstraint
from repro.core.triggering_graph import TriggeringGraph
from repro.engine import naming
from repro.engine.database import Database
from repro.engine.schema import DatabaseSchema
from repro.engine.session import DatabaseView, DeltaView
from repro.engine.transaction import Transaction, TransactionManager
from repro.errors import (
    AnalysisError,
    RuleError,
    TransactionAborted,
    UnknownRelationError,
)

MODES = ("static", "dynamic")

# Statement types that are side-effect-free and therefore usable to *audit*
# a database state by executing the stored integrity program directly:
# temporaries, alarms, and direct constraint checks — but no base-relation
# updates.  This is the program-shape analysis behind the planned audit
# path: pure-alarm programs, ``Assign``+``Alarm`` programs, and translation
# fallbacks all qualify.
AUDITABLE_STATEMENTS = (Alarm, Assign, CheckConstraint)

# Disposition sentinel: the rule has no usable differential program for the
# matched triggers — audit it with the full check instead.
FULL_CHECK = object()

#: Violating tuples retained as a sample by audit outcomes.
AUDIT_SAMPLE = 3


class _AuditContext:
    """Execution context for auditing a stored integrity program.

    Resolves names against a read-only database view, gives ``Assign``
    statements a scratch temporary namespace, and pins the planned engine —
    so executing an auditable program is exactly the constraint check its
    rule translation encodes, at physical-plan speed, with zero effect on
    the database.
    """

    __slots__ = ("view", "database", "engine", "temps")

    def __init__(self, view: DatabaseView):
        self.view = view
        self.database = view.database
        self.engine = "planned"
        self.temps: Dict[str, object] = {}

    def resolve(self, name: str):
        if name in self.temps:
            return self.temps[name]
        return self.view.resolve(name)

    def set_temp(self, name: str, relation) -> None:
        self.temps[name] = relation


class IntegrityController:
    """Rule catalog + transaction modification engine."""

    def __init__(
        self,
        schema: DatabaseSchema,
        mode: str = "static",
        optimize: bool = True,
        differential: bool = True,
        allow_fallback: bool = True,
        engine: Optional[str] = None,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        self.schema = schema
        self.mode = mode
        self.optimize = optimize
        self.differential = differential
        self.allow_fallback = allow_fallback
        # Evaluation backend for enforcement/audits: "planned" (compiled
        # physical plans, the default), "naive" (reference interpreter), or
        # None to follow the planner's process-wide default.
        self.engine = engine
        self.rules: List[IntegrityRule] = []
        self.store = IntegrityProgramStore()
        self.last_stats: Optional[ModificationStats] = None
        self.modifications = 0
        # One AuditScheduler per audited database (weakly held): the
        # concurrent-enforcement counterpart of the program store.
        self._schedulers: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def _engine(self) -> str:
        return planner.resolve_engine(engine=self.engine)

    # -- rule management ---------------------------------------------------------

    def add_rule(
        self, rule: Union[str, IntegrityRule], name: Optional[str] = None
    ) -> IntegrityRule:
        """Register a rule (RL text or a prebuilt IntegrityRule)."""
        if isinstance(rule, str):
            rule = parse_rule(rule, name=name)
        if any(existing.name == rule.name for existing in self.rules):
            raise RuleError(f"a rule named {rule.name!r} is already registered")
        self._check_condition_schema(rule.condition)
        self._check_action_schema(rule)
        self.rules.append(rule)
        integrity_program = self.store.add(
            get_int_p(
                rule,
                self.schema,
                optimize=self.optimize,
                differential=self.differential,
                allow_fallback=self.allow_fallback,
            )
        )
        if self._engine() == "planned":
            # Section 6.2 taken one layer further: static-mode rules compile
            # not just to algebra programs but to physical plans, once, at
            # definition time.  The structural plan cache makes this shared
            # with every later enforcement of the same expressions.
            planner.precompile_program(integrity_program.program)
            for piece in (integrity_program.differentials or {}).values():
                planner.precompile_program(piece)
        return rule

    def add_constraint(
        self,
        name: str,
        condition: Union[str, C.Formula],
        response: Union[None, str, Program] = None,
        triggers=None,
        non_triggering: bool = False,
    ) -> IntegrityRule:
        """Register a constraint; the default response aborts (Section 4).

        ``response`` may be None (abort), the literal string ``"abort"``, an
        algebra program, or program text for a compensating action.
        """
        if isinstance(condition, str):
            condition = parse_constraint(condition)
        if response is None or (
            isinstance(response, str) and response.strip().lower() == "abort"
        ):
            action = ABORT_ACTION
        elif isinstance(response, Program):
            action = response
        else:
            action = parse_program(response)
        rule = IntegrityRule(
            condition,
            action=action,
            triggers=triggers,
            name=name,
            non_triggering=non_triggering,
        )
        return self.add_rule(rule)

    def remove_rule(self, name: str) -> None:
        self.rules = [rule for rule in self.rules if rule.name != name]
        if name in self.store:
            self.store.remove(name)

    def rule(self, name: str) -> IntegrityRule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise RuleError(f"no rule named {name!r}")

    # -- validation ---------------------------------------------------------------

    def _check_condition_schema(self, condition: C.Formula) -> None:
        """Relations exist; attribute references resolve (names, arity)."""
        for relation in relation_names(condition):
            base = naming.base_of(relation)
            if base not in self.schema:
                raise UnknownRelationError(base, "integrity constraint")
        ranges = variable_ranges(condition)
        schemas: Dict[str, list] = {
            var: [self.schema.relation(naming.base_of(rel)) for rel in sorted(rels)]
            for var, rels in ranges.items()
        }
        for term in C.iter_terms(condition):
            if isinstance(term, C.AttrSel):
                candidates = schemas.get(term.var)
                if not candidates:
                    continue  # closedness/safety checks report this better
                if not any(
                    _resolves(schema, term.attr) for schema in candidates
                ):
                    raise AnalysisError(
                        f"attribute {term.attr!r} of variable {term.var!r} "
                        f"does not resolve against "
                        f"{[schema.name for schema in candidates]}"
                    )
            elif isinstance(term, C.AggTerm):
                base = naming.base_of(term.relation)
                if not _resolves(self.schema.relation(base), term.attr):
                    raise AnalysisError(
                        f"attribute {term.attr!r} does not resolve against "
                        f"relation {base!r}"
                    )

    def _check_action_schema(self, rule: IntegrityRule) -> None:
        if rule.is_aborting:
            return
        for relation in rule.action_program().relations_read():
            base = naming.base_of(relation)
            if base not in self.schema and "@" not in relation:
                # Temporaries assigned earlier in the action are legal.
                assigned = {
                    statement.name
                    for statement in rule.action_program()
                    if hasattr(statement, "name")
                }
                if base not in assigned:
                    raise UnknownRelationError(base, f"action of rule {rule.name!r}")

    def validate_rules(self) -> TriggeringGraph:
        """Build the triggering graph and raise on cycles (Section 6.1)."""
        graph = TriggeringGraph(self.rules)
        graph.validate()
        return graph

    def triggering_graph(self) -> TriggeringGraph:
        return TriggeringGraph(self.rules)

    # -- the transaction modification hook --------------------------------------------

    def _selector(self):
        if self.mode == "static":
            return StaticSelector(self.store)
        return DynamicSelector(
            self.rules,
            self.schema,
            optimize=self.optimize,
            allow_fallback=self.allow_fallback,
        )

    def modify_transaction(self, transaction: Transaction) -> Transaction:
        """ModT (Alg 5.1) with the configured selector back-end."""
        stats = ModificationStats()
        modified = mod_t(transaction, self._selector(), stats=stats)
        self.last_stats = stats
        self.modifications += 1
        return modified

    def modify_program(self, program: Program) -> Program:
        """ModP on a bare program (useful for inspection and tests)."""
        from repro.core.modification import mod_p

        stats = ModificationStats()
        result = mod_p(program, self._selector(), stats=stats)
        self.last_stats = stats
        return result

    # -- direct checking (the audit/baseline path) ---------------------------------------

    def violated_constraints(
        self, database: Database, engine: Optional[str] = None
    ) -> List[str]:
        """Names of rules whose conditions fail on the current state.

        This bypasses transaction modification entirely — it is the direct
        audit path used for post-hoc checks, tests, and the
        check-after-write baseline in the benchmarks.

        With the planned engine (the default), *every* rule is audited
        through compiled physical plans — which exploit any hash indexes on
        the database.  Aborting rules whose stored integrity program is
        side-effect-free (pure alarms, ``Assign``+``Alarm`` shapes,
        translation fallbacks) execute that program directly against an
        audit context; everything else (compensating-action rules above
        all) compiles its *condition* through the plan-backed calculus
        evaluator.  Only genuinely untranslatable residue reaches the naive
        model checker, which otherwise survives purely as the test oracle
        (``engine="naive"``).
        """
        engine = planner.resolve_engine(engine=engine or self.engine)
        view = DatabaseView(database, engine=engine)
        return [
            rule.name for rule in self.rules if self._is_violated(rule, view, engine)
        ]

    def _audit_program(self, rule: IntegrityRule) -> Optional[Program]:
        """The stored program of ``rule`` if executing it *is* an audit.

        Program-shape analysis: aborting rules translate to programs whose
        statements merely compute and test (never update), so running them
        against a read-only context yields the rule's verdict.  Returns
        None for compensating rules (their program is a repair action, not
        a check) and for any non-auditable statement shape.
        """
        if not rule.is_aborting or rule.name not in self.store:
            return None
        program = self.store.get(rule.name).program
        statements = program.statements
        if statements and all(
            isinstance(statement, AUDITABLE_STATEMENTS)
            for statement in statements
        ):
            return program
        return None

    @staticmethod
    def _program_outcome(program: Program, view: DatabaseView) -> tuple:
        """Run an auditable program against a scratch context.

        Returns ``(violated, violating_sample)``: alarm statements evaluate
        their violation expression (collecting a deterministic sample of
        the violating tuples), assignments bind scratch temporaries, and
        direct constraint checks contribute a verdict without tuples.  The
        first violating statement decides — the same short-circuit the
        abort-signal execution path takes.
        """
        context = _AuditContext(view)
        for statement in program:
            if isinstance(statement, Alarm):
                result = evaluate_expression(statement.expr, context)
                if len(result) > 0:
                    return True, tuple(result.sorted_rows()[:AUDIT_SAMPLE])
            else:
                try:
                    statement.execute(context)
                except TransactionAborted:
                    return True, ()
        return False, ()

    @classmethod
    def _program_violated(cls, program: Program, view: DatabaseView) -> bool:
        """Boolean form of :meth:`_program_outcome`."""
        return cls._program_outcome(program, view)[0]

    def _is_violated(self, rule: IntegrityRule, view: DatabaseView, engine: str) -> bool:
        if engine != "planned":
            return not evaluate_constraint(rule.condition, view, validate=False)
        program = self._audit_program(rule)
        if program is not None:
            return self._program_violated(program, view)
        compiled = compile_constraint(rule.condition, self.schema)
        return compiled.violated(view)

    def violated_constraints_incremental(
        self,
        database: Database,
        differentials,
        engine: Optional[str] = None,
    ) -> List[str]:
        """Incremental audit: check only what a committed delta can have
        violated, through per-trigger delta plans.

        ``differentials`` is the committed net delta — a
        :class:`~repro.engine.transaction.TransactionResult` or its
        ``{base: (plus, minus)}`` mapping.  The premise is the paper's
        Def 3.5: the pre-transaction state satisfied every registered rule
        (e.g. it was itself audited, or all writes go through transaction
        modification).  Under it:

        * rules whose triggers miss the performed update types are skipped
          outright — their verdict cannot have changed;
        * rules with stored differential variants run the matched triggers'
          delta programs against a :class:`~repro.engine.session.DeltaView`,
          touching O(|Δ|) state (vacuous variants cost nothing at all);
        * everything else — compensating rules, non-incrementalizable
          shapes — falls back to the full check, exactly as
          :meth:`violated_constraints` would evaluate it.

        Returns the names of rules the delta violated.  With an empty delta
        the audit is free and returns [].
        """
        if hasattr(differentials, "differentials"):
            differentials = differentials.differentials
        view = DeltaView(
            database,
            differentials,
            engine=planner.resolve_engine(engine=engine or self.engine),
        )
        performed = view.performed_triggers()
        if not performed:
            return []
        violated = []
        for rule in self.rules:
            disposition = self._rule_delta_disposition(rule, performed)
            if disposition is None:
                continue  # unmatched or vacuous: the old verdict stands
            if disposition is FULL_CHECK:
                if self._is_violated(rule, view, view.engine):
                    violated.append(rule.name)
            elif self._program_violated(disposition, view):
                violated.append(rule.name)
        return violated

    def _rule_delta_disposition(self, rule: IntegrityRule, performed):
        """How to audit ``rule`` against a delta with ``performed`` triggers.

        Returns None when the rule needs no audit at all (its triggers miss
        the performed update types, or the matched differential program is
        vacuous), the matched auditable differential :class:`Program`
        when one exists, or :data:`FULL_CHECK` when only the full-state
        check is sound (compensating rules, non-incrementalizable shapes).
        This is the per-rule selection logic both the inline incremental
        audit and the fan-out scheduler share.
        """
        stored = self.store.get(rule.name) if rule.name in self.store else None
        triggers = stored.triggers if stored is not None else rule.triggers
        matched = triggers & performed
        if not matched:
            return None
        program = None
        if stored is not None and stored.differentials is not None:
            program = stored.action_for(matched)
        if program is not None and program.is_empty:
            return None  # vacuous for these update types
        if program is not None and all(
            isinstance(statement, AUDITABLE_STATEMENTS)
            for statement in program.statements
        ):
            return program
        return FULL_CHECK

    def audit_tasks(
        self,
        database: Database,
        differentials,
        engine: Optional[str] = None,
    ) -> List:
        """Independent per-rule audit units for a committed delta.

        The fan-out form of :meth:`violated_constraints_incremental`: one
        :class:`~repro.core.scheduler.RuleAuditTask` per rule the delta can
        have affected, each side-effect-free and self-contained (it builds
        its own :class:`~repro.engine.session.DeltaView` on ``run``), so a
        worker pool may execute them in any order or concurrently.  Rules
        the delta provably cannot violate produce no task.
        """
        from repro.core.scheduler import RuleAuditTask

        if hasattr(differentials, "differentials"):
            differentials = differentials.differentials
        engine = planner.resolve_engine(engine=engine or self.engine)
        performed = DeltaView(database, differentials).performed_triggers()
        if not performed:
            return []
        tasks = []
        for rule in self.rules:
            disposition = self._rule_delta_disposition(rule, performed)
            if disposition is None:
                continue
            program = None if disposition is FULL_CHECK else disposition
            tasks.append(
                RuleAuditTask(self, rule, program, database, differentials, engine)
            )
        return tasks

    def audit_scheduler(self, database: Database, **options):
        """The per-database :class:`~repro.core.scheduler.AuditScheduler`.

        Created on first use (draining the database's commit log from its
        oldest retained record) and cached weakly, so every session over
        the same database shares one scheduler, one cursor, and one worker
        pool.  ``options`` are forwarded to the constructor on first
        creation only.
        """
        scheduler = self._schedulers.get(database)
        if scheduler is None:
            from repro.core.scheduler import AuditScheduler

            scheduler = AuditScheduler(self, database, **options)
            self._schedulers[database] = scheduler
        return scheduler

    def close_schedulers(self) -> None:
        """Deterministically close every cached audit scheduler.

        Each close drains in-flight audits into that scheduler's history
        and shuts down its worker pool (thread or process), so callers —
        tests, the CLI — never leak workers.  Schedulers stay cached and
        usable; the next drain lazily recreates its pool.
        """
        for scheduler in list(self._schedulers.values()):
            scheduler.close()

    def install_indexes(
        self, database: Database, min_benefit: float = 0.0
    ) -> List[tuple]:
        """Create the hash indexes the compiled plans would benefit from.

        Walks every stored integrity program (full and differential
        variants), collects the planner's index hints, and creates the
        corresponding persistent hash indexes on ``database``.  Returns the
        ``(relation, attrs)`` pairs actually installed.  Indexes are
        maintained incrementally from then on, so repeated enforcement and
        audits of equality-keyed constraints (referential integrity above
        all) probe per distinct key instead of re-hashing per evaluation.

        ``min_benefit`` is the advisor's cost threshold, in tuples of
        estimated per-enforcement work saved: each plan that would otherwise
        re-hash relation ``R`` forgoes ``|R|`` tuple-hashes, so a hint's
        benefit is ``uses × |R|`` under the database's current
        cardinalities.  Hints below the threshold are skipped — building and
        incrementally maintaining an index on a tiny or rarely-referenced
        relation costs more than it saves.  The default of 0 installs every
        hint (the PR 1 behaviour).
        """
        hints: Dict[tuple, int] = {}
        for integrity_program in self.store:
            pieces = [integrity_program.program]
            pieces.extend((integrity_program.differentials or {}).values())
            for piece in pieces:
                for statement in piece:
                    expressions = list(planner.statement_expressions(statement))
                    if not expressions and isinstance(statement, CheckConstraint):
                        # Fallback statements evaluate through compiled
                        # sub-plans (repro.calculus.planned); those plans'
                        # hints are just as real as an alarm's.
                        expressions = list(
                            compile_constraint(
                                statement.formula, self.schema
                            ).plan_expressions()
                        )
                    for expression in expressions:
                        for hint in planner.index_hints(expression):
                            hints[hint] = hints.get(hint, 0) + 1
        cardinalities = database.cardinalities()
        installed = []
        for (name, attrs), uses in sorted(hints.items(), key=repr):
            if name not in database:
                continue
            benefit = uses * cardinalities.get(name, 0)
            if benefit < min_benefit:
                continue
            database.create_index(name, attrs)
            installed.append((name, attrs))
        return installed

    def drop_unused(
        self,
        database: Database,
        min_probes: int = 1,
        min_keys: int = 0,
    ) -> List[tuple]:
        """Maintenance entry point: drop built indexes that saw no use.

        The evidence is the per-use ledger every index keeps
        (:class:`repro.engine.indexes.IndexUsage`): each consuming operator
        execution records one use with the *exact* number of keys it probed
        or served — bulk consumers no longer count as a single probe.  An
        index with fewer than ``min_probes`` uses, or (when ``min_keys`` is
        set) fewer than ``min_keys`` keys of total probe volume, since it
        was built or last inspected is dropped — declaration and contents —
        so the engine stops paying incremental maintenance for it on every
        write.  Returns the dropped ``(relation, positions)`` pairs.
        Surviving indexes' ledgers are reset, making repeated calls a
        rolling usage window.
        """
        dropped = []
        for name in database.relation_names:
            indexes = database.relation(name).indexes
            if indexes is None:
                continue
            for index in list(indexes):
                if not index.built:
                    continue
                if index.usage.uses < min_probes or index.usage.keys < min_keys:
                    indexes.drop(index.positions)
                    dropped.append((name, index.positions))
                else:
                    index.usage.reset()
        return dropped

    def is_correct_transaction(self, database: Database, transaction) -> bool:
        """Def 3.5: is ``transaction`` correct w.r.t. ``database`` and the
        registered rules?

        A transaction is correct when its committed execution violates no
        transition constraint and leaves a state violating no state
        constraint.  Checked non-destructively: the transaction runs
        *unmodified* against a snapshot, the post-state is audited, and the
        original database is restored.  (Transaction modification makes
        every transaction's execution correct; this predicate classifies
        the transaction *itself*, as the paper's Def 3.5 does.)
        """
        snapshot = database.snapshot()
        pre_time = database.logical_time
        try:
            result = TransactionManager(database).execute(transaction)
            if result.aborted:
                # An abort is the identity transition: vacuously correct.
                return True
            return not self.violated_constraints(database)
        finally:
            database.restore(snapshot)
            database.logical_time = pre_time

    def __repr__(self) -> str:
        return (
            f"IntegrityController({len(self.rules)} rules, mode={self.mode}, "
            f"differential={self.differential})"
        )


def _resolves(schema, attr) -> bool:
    try:
        schema.position_of(attr)
        return True
    except Exception:
        return False
