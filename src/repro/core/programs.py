"""Integrity programs and the compiled program store (paper Section 6.2).

Translating and optimizing rules on every transaction (Alg 5.1-5.3) is
wasteful; Section 6.2 moves that work to rule-definition time.  An
*integrity program* (Def 6.3) is a pair ``K = (t, p)`` of a trigger set and
a translated extended-algebra program, "extended with a flag indicating
whether the program is non-triggering" — plus, here, the differential
variants from :mod:`repro.core.optimization` keyed by elementary update
type.

:class:`IntegrityProgramStore` is the constraint-enforcement-time side:
``SelPS`` selects the programs triggered by a user program and ``ConcatP``
concatenates their actions (Alg 6.2).  The store keeps insertion order, so
modification output is deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.algebra.programs import EMPTY_PROGRAM, Program, concat
from repro.core.triggers import TriggerSet, get_trig_px
from repro.engine.schema import DatabaseSchema


class IntegrityProgram:
    """An integrity program ``(t, p)`` (Def 6.3) with differential variants."""

    __slots__ = ("name", "triggers", "program", "non_triggering", "differentials")

    def __init__(
        self,
        name: str,
        triggers: TriggerSet,
        program: Program,
        differentials: Optional[Dict[tuple, Program]] = None,
    ):
        self.name = name
        self.triggers = frozenset(triggers)
        self.program = program
        self.non_triggering = program.non_triggering
        self.differentials = differentials

    def action_for(self, matched: Iterable) -> Program:
        """The program to append given the matched trigger specs.

        Without differential variants this is the full program (the paper's
        ``action(K)``).  With variants, the union of the matched triggers'
        specialized programs is used — deduplicated, and skipping vacuous
        entries — which is the differential-test optimization of §5.2.1.
        """
        if self.differentials is None:
            return self.program
        pieces: List[Program] = []
        for trigger in sorted(matched):
            piece = self.differentials.get(trigger)
            if piece is None:
                return self.program  # unexpected trigger: be conservative
            if not piece.is_empty and piece not in pieces:
                pieces.append(piece)
        if not pieces:
            return EMPTY_PROGRAM
        return concat(*pieces)

    def __repr__(self) -> str:
        from repro.core.triggers import format_trigger_set

        differential = ", differential" if self.differentials else ""
        return (
            f"IntegrityProgram({self.name}, "
            f"WHEN {format_trigger_set(self.triggers)}{differential})"
        )


def get_int_p(
    rule,
    db: DatabaseSchema,
    optimize: bool = True,
    differential: bool = False,
    allow_fallback: bool = True,
) -> IntegrityProgram:
    """GetIntP (Alg 6.1): compile one rule into an integrity program.

    ``GetIntP(J) = (triggers(J), TransR(OptR(J)))`` — with the differential
    specialization bolted on when requested.
    """
    from repro.core.optimization import differential_programs, opt_r
    from repro.core.translation import trans_r

    optimized_rule = opt_r(rule) if optimize else rule
    program = trans_r(optimized_rule, db, allow_fallback=allow_fallback)
    if optimize:
        from repro.algebra.optimizer import optimize_program

        program = optimize_program(program)
    differentials = None
    if differential and rule.is_aborting:
        differentials = differential_programs(optimized_rule, program, db)
    return IntegrityProgram(rule.name, rule.triggers, program, differentials)


class IntegrityProgramStore:
    """The stored set of compiled integrity programs (Section 6.2)."""

    def __init__(self):
        self._programs: List[IntegrityProgram] = []
        self._by_name: Dict[str, IntegrityProgram] = {}

    def add(self, program: IntegrityProgram) -> IntegrityProgram:
        if program.name in self._by_name:
            raise KeyError(f"integrity program {program.name!r} already stored")
        self._programs.append(program)
        self._by_name[program.name] = program
        return program

    def remove(self, name: str) -> None:
        program = self._by_name.pop(name)
        self._programs.remove(program)

    def get(self, name: str) -> IntegrityProgram:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._programs)

    def __iter__(self) -> Iterator[IntegrityProgram]:
        return iter(self._programs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- Alg 6.2 ----------------------------------------------------------------

    def sel_ps(self, program: Program) -> List[IntegrityProgram]:
        """SelPS: integrity programs whose trigger set meets GetTrigPX(P)."""
        performed = get_trig_px(program)
        if not performed:
            return []
        return [
            integrity_program
            for integrity_program in self._programs
            if integrity_program.triggers & performed
        ]

    def trig_p(self, program: Program) -> Program:
        """TrigP (Alg 6.2): ConcatP(SelPS(P, K)), differential-aware."""
        performed = get_trig_px(program)
        if not performed:
            return EMPTY_PROGRAM
        pieces: List[Program] = []
        for integrity_program in self._programs:
            matched = integrity_program.triggers & performed
            if matched:
                piece = integrity_program.action_for(matched)
                if not piece.is_empty:
                    pieces.append(piece)
        if not pieces:
            return EMPTY_PROGRAM
        return concat(*pieces)
