"""The paper's primary contribution: the transaction modification subsystem.

This package implements Sections 4.2-6 of the paper:

* :mod:`repro.core.triggers` — trigger specifications and sets (Defs
  4.5-4.6), ``GetTrigS``/``GetTrigP``/``GetTrigPX`` (Alg 5.2, Def 6.2);
* :mod:`repro.core.trigger_generation` — automatic trigger-set generation
  from rule conditions (Alg 5.7);
* :mod:`repro.core.rules` / :mod:`repro.core.rule_language` — integrity
  rules and the RL language ``WHEN ts IF NOT c THEN p`` (Def 4.7);
* :mod:`repro.core.translation` — rule translation ``TransR``/``TransC``
  with the Table 1 construct families and a general calculus-to-algebra
  translation (Algs 5.5-5.6, Def 5.1);
* :mod:`repro.core.optimization` — rule optimization ``OptR``/``OptC``
  including differential (``R@plus``/``R@minus``) specialization (Alg 5.4);
* :mod:`repro.core.modification` — the transaction modification algorithm
  ``ModT``/``ModP``/``TrigP`` with rule selection ``SelRS`` and
  ``TrOptRS`` (Algs 5.1-5.3);
* :mod:`repro.core.programs` — integrity programs and the compiled store
  for static, rule-definition-time translation (Def 6.3, Algs 6.1-6.2);
* :mod:`repro.core.triggering_graph` — triggering-graph construction and
  cycle analysis (Defs 6.1-6.2);
* :mod:`repro.core.subsystem` — the :class:`IntegrityController` facade
  that plugs into the transaction manager.
"""

from repro.core.triggers import (
    DEL,
    INS,
    TriggerSet,
    get_trig_p,
    get_trig_px,
    get_trig_s,
)
from repro.core.trigger_generation import generate_triggers
from repro.core.rules import IntegrityRule, ABORT_ACTION
from repro.core.rule_language import parse_rule
from repro.core.translation import trans_c, trans_r, calc_to_alg
from repro.core.optimization import opt_r, opt_c, differential_programs
from repro.core.modification import mod_t, mod_p, ModificationStats
from repro.core.programs import IntegrityProgram, IntegrityProgramStore, get_int_p
from repro.core.procpool import ControllerSpec, ProcessAuditExecutor
from repro.core.triggering_graph import TriggeringGraph
from repro.core.subsystem import IntegrityController

__all__ = [
    "ABORT_ACTION",
    "ControllerSpec",
    "DEL",
    "INS",
    "IntegrityController",
    "ProcessAuditExecutor",
    "IntegrityProgram",
    "IntegrityProgramStore",
    "IntegrityRule",
    "ModificationStats",
    "TriggerSet",
    "TriggeringGraph",
    "calc_to_alg",
    "differential_programs",
    "generate_triggers",
    "get_int_p",
    "get_trig_p",
    "get_trig_px",
    "get_trig_s",
    "mod_p",
    "mod_t",
    "opt_c",
    "opt_r",
    "parse_rule",
    "trans_c",
    "trans_r",
]
