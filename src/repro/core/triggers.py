"""Trigger specifications and trigger sets (paper Defs 4.5-4.6, Alg 5.2).

A *trigger specification* is a pair ``U(R)`` of an elementary update type
``U in {INS, DEL}`` and a relation name (Def 4.5); an update operation
counts as a delete plus an insert.  A *trigger set* is a set of trigger
specifications (Def 4.6) — here a frozenset of ``(kind, relation)`` pairs.

The derivation functions of Alg 5.2:

* ``get_trig_s`` — the update types of one statement (``GetTrigS``);
* ``get_trig_p`` — of a whole program (``GetTrigP``);
* ``get_trig_px`` — ``GetTrigPX`` of Def 6.2, which returns the empty set
  for programs declared non-triggering (the cycle-breaking device).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.algebra.programs import Program
from repro.algebra.statements import DEL, INS, Statement, statement_update_triggers
from repro.errors import RuleError

TriggerSpec = Tuple[str, str]
TriggerSet = frozenset

_VALID_KINDS = (INS, DEL)


def make_trigger(kind: str, relation: str) -> TriggerSpec:
    """Build a validated trigger specification ``U(R)``."""
    kind = kind.upper()
    if kind not in _VALID_KINDS:
        raise RuleError(f"unknown update type {kind!r} (expected INS or DEL)")
    return (kind, relation)


def make_trigger_set(specs: Iterable) -> TriggerSet:
    """Build a trigger set from ``(kind, relation)`` pairs."""
    return frozenset(make_trigger(kind, relation) for kind, relation in specs)


def get_trig_s(statement: Statement) -> TriggerSet:
    """GetTrigS (Alg 5.2): the elementary update types of one statement."""
    return statement.update_triggers()


def get_trig_p(program) -> TriggerSet:
    """GetTrigP (Alg 5.2): union of update types over a program.

    Accepts a :class:`~repro.algebra.programs.Program` or any iterable of
    statements.
    """
    if isinstance(program, Program):
        return statement_update_triggers(program.statements)
    return statement_update_triggers(program)


def get_trig_px(program: Program) -> TriggerSet:
    """GetTrigPX (Def 6.2): honours the non-triggering flag."""
    if isinstance(program, Program) and program.non_triggering:
        return frozenset()
    return get_trig_p(program)


def format_trigger_set(triggers: TriggerSet) -> str:
    """Human-readable rendering, e.g. ``INS(beer), DEL(brewery)``."""
    return ", ".join(
        f"{kind}({relation})"
        for kind, relation in sorted(triggers, key=lambda spec: (spec[1], spec[0]))
    )
