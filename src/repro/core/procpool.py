"""The process-pool audit executor: true multi-core rule audits.

The thread-based pool in :mod:`repro.core.scheduler` overlaps audit I/O
and amortizes hash builds, but CPU-bound Python audits serialize on the
GIL — on an N-core machine the pool still burns one core.  This module
ships the same ``(rule, Δ)`` task shape across *process* boundaries, the
way PRISMA/DB shipped simplified checks to the nodes that owned the data:

* **Replicated read-only plans** — each worker process rebuilds the
  :class:`~repro.core.subsystem.IntegrityController` (rule catalog,
  integrity-program store, precompiled physical plans) exactly once, from
  a pickled :class:`ControllerSpec`, at startup.  Per task, only
  ``(rule name, frozen Δ)`` crosses the pipe.
* **Shared-nothing database replicas** — each worker owns a full replica
  of the database, shipped once at pool creation and kept current by
  replaying the same :class:`~repro.engine.commitlog.CommitRecord` stream
  the coordinator commits (``apply_deltas`` on the replica, O(|Δ|) per
  commit).  Because each worker's inbox is FIFO, every audit task runs
  against exactly the replica state of the drain that produced it — the
  process arm therefore gives *strict batched* verdicts even under
  concurrent commits, where the thread arm's verdicts may observe later
  states.
* **Nothing silently dropped** — worker exceptions travel back as error
  strings (the scheduler surfaces them as poisoned
  :class:`~repro.core.scheduler.AuditOutcome`\\ s); an unexpectedly dead
  worker is respawned from a fresh snapshot and its in-flight tasks are
  re-shipped exactly once (a task whose retry also dies surfaces as an
  audit error); a commit-log truncation gap resyncs the replicas from the
  durable write-ahead log when one is attached, falling back to a full
  replica ship.

Both ``fork`` and ``spawn`` start methods are supported: the worker
payload is always explicitly pickled and shipped (never inherited), so the
serialization path is identical — and property-tested — under either.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import threading
import time
from typing import Dict, List, Optional

from repro.core import shm as shm_transport
from repro.algebra.columnar import (
    decode_differentials,
    encode_differentials,
)

#: Seconds between liveness checks while waiting on a worker result.
RESULT_POLL_SECONDS = 0.25

#: Protocol used for every cross-process payload.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ControllerSpec:
    """A picklable recipe for rebuilding an IntegrityController.

    The controller itself is not picklable (it weakly caches per-database
    schedulers); the spec carries what :meth:`build` needs — the schema,
    the registered rules, and the constructor options — so a worker
    process reconstructs the full plan cache deterministically: re-adding
    the same rules in the same order re-derives the same integrity
    programs, differential variants, and precompiled physical plans.
    """

    __slots__ = (
        "schema",
        "rules",
        "mode",
        "optimize",
        "differential",
        "allow_fallback",
        "engine",
    )

    def __init__(self, controller):
        self.schema = controller.schema
        self.rules = list(controller.rules)
        self.mode = controller.mode
        self.optimize = controller.optimize
        self.differential = controller.differential
        self.allow_fallback = controller.allow_fallback
        self.engine = controller.engine

    def build(self):
        from repro.core.subsystem import IntegrityController

        controller = IntegrityController(
            self.schema,
            mode=self.mode,
            optimize=self.optimize,
            differential=self.differential,
            allow_fallback=self.allow_fallback,
            engine=self.engine,
        )
        for rule in self.rules:
            controller.add_rule(rule)
        return controller

    def __repr__(self) -> str:
        return f"ControllerSpec({len(self.rules)} rules, mode={self.mode})"


def run_rule_audit(controller, database, rule_name, differentials, engine):
    """Audit one rule against one delta on a (replica) database.

    The worker-side twin of
    :meth:`~repro.core.subsystem.IntegrityController.audit_tasks`: the
    per-rule disposition (skip / delta program / full check) is re-derived
    locally — it is a pure function of the rule store and the delta's
    performed triggers, so coordinator and worker always agree.  Returns
    ``(violated, violating_sample)``.
    """
    from repro.core.scheduler import RuleAuditTask
    from repro.core.subsystem import FULL_CHECK
    from repro.engine.session import DeltaView

    rule = controller.rule(rule_name)
    performed = DeltaView(database, differentials).performed_triggers()
    disposition = controller._rule_delta_disposition(rule, performed)
    if disposition is None:
        return False, ()
    program = None if disposition is FULL_CHECK else disposition
    task = RuleAuditTask(
        controller, rule, program, database, differentials, engine
    )
    return task.run()


def _load_blob(outbox, descriptor) -> bytes:
    """Materialize a pipe/shm shipment, acking shm segments immediately.

    The ack travels on the shared outbox (``("shm", name)``): the
    coordinator decrements the segment's reader count as it collects
    results, so a drained batch leaves no segment behind.
    """
    blob, ack = shm_transport.load(descriptor)
    if ack is not None:
        outbox.put(("shm", ack))
    return blob


def _audit_worker(inbox, outbox, payload: bytes) -> None:
    """Worker main loop: replicate, then audit what the coordinator sends."""
    spec, database = pickle.loads(payload)
    controller = spec.build()
    # The replica's position in the commit stream.  Applies below it are
    # skipped, which makes replication idempotent by sequence — a worker
    # respawned from a *newer* snapshot can safely receive the same
    # broadcast stream as its older siblings.
    replica_seq = database.commit_log.next_sequence
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "apply":
            for sequence, encoded in pickle.loads(
                _load_blob(outbox, message[1])
            ):
                if sequence < replica_seq:
                    continue  # already covered by this replica's snapshot
                database.apply_deltas(
                    decode_differentials(encoded), record=False
                )
                replica_seq = sequence + 1
        elif kind == "resync":
            database = pickle.loads(_load_blob(outbox, message[1]))
            replica_seq = database.commit_log.next_sequence
        elif kind == "task":
            task_id, rule_name, engine, descriptor = message[1:]
            started = time.perf_counter()
            try:
                # Task deltas decode lazily: the audit's delta plans scan
                # the differentials column-wise, so the row dicts only
                # materialize if a row-at-a-time path actually needs them.
                differentials = decode_differentials(
                    pickle.loads(_load_blob(outbox, descriptor)), lazy=True
                )
                violated, violations = run_rule_audit(
                    controller, database, rule_name, differentials, engine
                )
                outbox.put(
                    (
                        task_id,
                        violated,
                        tuple(violations),
                        None,
                        time.perf_counter() - started,
                    )
                )
            except BaseException as error:  # poison task: ship the failure
                outbox.put(
                    (
                        task_id,
                        None,
                        (),
                        f"{type(error).__name__}: {error}",
                        time.perf_counter() - started,
                    )
                )


class _ProcessFuture:
    """A future resolving to an :class:`~repro.core.scheduler.AuditOutcome`."""

    __slots__ = ("executor", "task_id", "rule", "sequences", "mode", "predicted")

    def __init__(self, executor, task_id, rule, sequences, mode, predicted):
        self.executor = executor
        self.task_id = task_id
        self.rule = rule
        self.sequences = sequences
        self.mode = mode
        self.predicted = predicted

    def result(self):
        from repro.core.scheduler import AuditOutcome

        violated, violations, error, seconds = self.executor._collect(
            self.task_id
        )
        return AuditOutcome(
            self.rule,
            self.sequences,
            violated,
            violations=violations,
            error=error,
            mode=self.mode,
            executor="process",
            seconds=seconds,
            predicted=self.predicted,
        )


class ProcessAuditExecutor:
    """A shared-nothing pool of audit worker processes.

    Workers are shipped ``(ControllerSpec, database replica)`` once at
    construction; thereafter the coordinator streams commit records to
    every worker (:meth:`replicate`) and ``(rule, Δ)`` tasks to one worker
    each (:meth:`submit`, round-robin).  FIFO inbox ordering guarantees a
    task observes exactly the replica state of its drain.
    """

    def __init__(
        self,
        controller,
        database,
        workers: int = 4,
        start_method: Optional[str] = None,
        shm_min_bytes: Optional[int] = None,
    ):
        self.start_method = start_method or default_start_method()
        self._context = multiprocessing.get_context(self.start_method)
        self.database = database
        self.workers = max(int(workers), 1)
        self._transport = shm_transport.ShmTransport(
            min_bytes=(
                shm_transport.SHM_MIN_BYTES
                if shm_min_bytes is None
                else shm_min_bytes
            )
        )
        self._spec = ControllerSpec(controller)
        payload = pickle.dumps(
            (self._spec, database), protocol=PICKLE_PROTOCOL
        )
        # Records with sequence >= this watermark have not yet been shipped
        # to the replicas (the initial snapshot covers everything before).
        self._replicated_through = database.commit_log.next_sequence
        self._outbox = self._context.Queue()
        self._inboxes = []
        self._processes = []
        for index in range(self.workers):
            self._inboxes.append(None)
            self._processes.append(None)
            self._spawn(index, payload)
        self._next_task_id = 0
        self._next_worker = 0
        self._owners: Dict[int, int] = {}
        self._done: Dict[int, tuple] = {}
        # Shipped-but-uncollected task messages, kept so a dead worker's
        # in-flight tasks can be re-shipped to its replacement exactly once.
        self._pending: Dict[int, tuple] = {}
        self._retried: set = set()
        #: Workers respawned after an unexpected death.
        self.restarts = 0
        self._reader_lock = threading.Lock()
        # One coalesced drain submits the same differentials object once
        # per rule: pickle it once, ship the blob n times.
        self._delta_cache: Optional[tuple] = None
        self._closed = False
        self._hold_wal()

    def _spawn(self, index: int, payload: bytes) -> None:
        """(Re)start worker ``index`` with a fresh inbox and payload."""
        inbox = self._context.Queue()
        process = self._context.Process(
            target=_audit_worker,
            args=(inbox, self._outbox, payload),
            name=f"repro-audit-proc-{index}",
            daemon=True,
        )
        process.start()
        self._inboxes[index] = inbox
        self._processes[index] = process

    def _hold_wal(self) -> None:
        """Retention hold on the durable log for replica catch-up.

        Records at/after ``_replicated_through`` have not reached every
        replica yet; holding them in the WAL is what lets :meth:`resync`
        catch replicas up from the log instead of re-shipping the whole
        database."""
        wal = getattr(self.database, "wal", None)
        if wal is not None:
            wal.register_consumer("process-replicas", self._replicated_through)

    # -- replication -----------------------------------------------------------

    def replicate(self, records) -> int:
        """Ship not-yet-shipped commit records to every worker replica."""
        fresh = [
            record
            for record in records
            if record.sequence >= self._replicated_through
        ]
        if not fresh:
            return 0
        blob = pickle.dumps(
            [
                (record.sequence, encode_differentials(record.differentials))
                for record in fresh
            ],
            protocol=PICKLE_PROTOCOL,
        )
        descriptor = self._transport.ship(blob, readers=self.workers)
        for inbox in self._inboxes:
            inbox.put(("apply", descriptor))
        self._replicated_through = fresh[-1].sequence + 1
        self._hold_wal()
        return len(fresh)

    def resync(self, database) -> None:
        """Catch every replica up after a commit-log truncation gap.

        With a write-ahead log attached the missed records are still on
        disk (the ``process-replicas`` retention hold keeps them there):
        resync replays them from the log — O(|missed Δ|) per worker — and
        only falls back to shipping a full fresh replica when the log
        cannot serve the range (no WAL, or the hold was released).
        """
        if not self._resync_from_log(database):
            blob = pickle.dumps(database, protocol=PICKLE_PROTOCOL)
            descriptor = self._transport.ship(blob, readers=self.workers)
            for inbox in self._inboxes:
                inbox.put(("resync", descriptor))
            self._replicated_through = database.commit_log.next_sequence
        self._hold_wal()

    def _resync_from_log(self, database) -> bool:
        """Replay the replicas' missed records from the durable log."""
        wal = getattr(database, "wal", None)
        if wal is None:
            return False
        start = self._replicated_through
        end = database.commit_log.next_sequence
        try:
            wal.sync()  # make buffered appends visible to the scan below
            missed = [
                (record.sequence, record.differentials)
                for record in wal.scan(
                    start_sequence=start, upto=end - 1, decode=False
                )
            ]
        except Exception:
            return False
        # The log must cover the gap exactly: every sequence in [start, end).
        if len(missed) != end - start or (
            missed and (missed[0][0] != start or missed[-1][0] != end - 1)
        ):
            return False
        if missed:
            blob = pickle.dumps(missed, protocol=PICKLE_PROTOCOL)
            descriptor = self._transport.ship(blob, readers=self.workers)
            for inbox in self._inboxes:
                inbox.put(("apply", descriptor))
        self._replicated_through = end
        return True

    # -- task dispatch ---------------------------------------------------------

    def submit(self, task, sequences, mode="async", predicted=None):
        """Dispatch one audit task to a worker; returns a future."""
        task_id = self._next_task_id
        self._next_task_id += 1
        worker = self._next_worker
        self._next_worker = (self._next_worker + 1) % self.workers
        self._owners[task_id] = worker
        cache = self._delta_cache
        if cache is not None and cache[0] is task.differentials:
            blob = cache[1]
            descriptor = self._transport.reship(cache[2], readers=1)
            if descriptor is None:  # segment already drained: ship again
                descriptor = self._transport.ship(blob, readers=1)
                self._delta_cache = (task.differentials, blob, descriptor)
        else:
            blob = pickle.dumps(
                encode_differentials(task.differentials),
                protocol=PICKLE_PROTOCOL,
            )
            descriptor = self._transport.ship(blob, readers=1)
            self._delta_cache = (task.differentials, blob, descriptor)
        self._pending[task_id] = (task.rule_name, task.engine, blob)
        self._inboxes[worker].put(
            ("task", task_id, task.rule_name, task.engine, descriptor)
        )
        return _ProcessFuture(
            self, task_id, task.rule_name, sequences, mode, predicted
        )

    def _collect(self, task_id: int) -> tuple:
        """Block until ``task_id``'s result arrives; store others en route."""
        while True:
            with self._reader_lock:
                if task_id in self._done:
                    self._owners.pop(task_id, None)
                    self._pending.pop(task_id, None)
                    self._retried.discard(task_id)
                    return self._done.pop(task_id)
                try:
                    message = self._outbox.get(timeout=RESULT_POLL_SECONDS)
                except queue_module.Empty:
                    owner = self._owners.get(task_id)
                    if owner is not None and not self._processes[owner].is_alive():
                        self._worker_died(owner)
                    continue
                if message[0] == "shm":
                    self._transport.ack(message[1])
                    continue
                self._done[message[0]] = message[1:]

    def _worker_died(self, owner: int) -> None:
        """Restart-and-resync after an unexpected worker death.

        Called with the reader lock held.  The dead worker is respawned
        from a fresh database snapshot (sequence-idempotent applies let it
        rejoin the broadcast stream mid-flight, see :func:`_audit_worker`)
        and each of its in-flight tasks is re-shipped exactly once; a task
        whose retry also dies surfaces as an audit error.  Retried verdicts
        may observe a post-drain replica state — the thread arm's
        semantics — rather than the drain-time state.
        """
        # Collect results that did arrive before the crash: those tasks
        # need no retry.
        while True:
            try:
                message = self._outbox.get_nowait()
            except queue_module.Empty:
                break
            if message[0] == "shm":
                self._transport.ack(message[1])
            else:
                self._done[message[0]] = message[1:]
        stranded = sorted(
            tid
            for tid, worker in self._owners.items()
            if worker == owner and tid not in self._done and tid in self._pending
        )
        self._processes[owner].join(timeout=1.0)
        payload = pickle.dumps(
            (self._spec, self.database), protocol=PICKLE_PROTOCOL
        )
        self._spawn(owner, payload)
        self.restarts += 1
        for tid in stranded:
            if tid in self._retried:
                self._done[tid] = (
                    None,
                    (),
                    f"audit worker process {owner} died before returning "
                    f"a verdict (task already retried once)",
                    0.0,
                )
                continue
            self._retried.add(tid)
            rule_name, engine, blob = self._pending[tid]
            descriptor = self._transport.ship(blob, readers=1)
            self._inboxes[owner].put(("task", tid, rule_name, engine, descriptor))

    def reap_acks(self) -> None:
        """Drain pending shared-memory acks without blocking on results."""
        while True:
            with self._reader_lock:
                try:
                    message = self._outbox.get_nowait()
                except queue_module.Empty:
                    return
                if message[0] == "shm":
                    self._transport.ack(message[1])
                else:
                    self._done[message[0]] = message[1:]

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop every worker; in-flight tasks should be collected first."""
        if self._closed:
            return
        self._closed = True
        for inbox, process in zip(self._inboxes, self._processes):
            if process.is_alive():
                try:
                    inbox.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - race
                    pass
        if wait:
            for process in self._processes:
                process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        try:
            self.reap_acks()
        except (ValueError, OSError):  # pragma: no cover - closed queue race
            pass
        self._transport.release_all()
        wal = getattr(self.database, "wal", None)
        if wal is not None:
            wal.release_consumer("process-replicas")

    def __repr__(self) -> str:
        alive = sum(1 for p in self._processes if p.is_alive())
        return (
            f"ProcessAuditExecutor({alive}/{self.workers} workers alive, "
            f"{self.start_method}, replicated_through="
            f"#{self._replicated_through})"
        )
