"""Parser for the integrity rule language RL (paper Def 4.7).

Concrete syntax (keywords case-insensitive, sections in this order):

.. code-block:: text

    [RULE name]
    [WHEN INS(rel), DEL(rel), ...]
    IF NOT <CL constraint>
    [THEN abort | THEN [NONTRIGGERING] <algebra program>]

Omitted ``WHEN`` means the trigger set is generated from the condition
(Alg 5.7 — the paper recommends this as "more convenient and less
error-prone").  Omitted ``THEN`` defaults to ``abort``.  The
``NONTRIGGERING`` marker declares the compensating program non-triggering
(Def 6.2), the cycle-breaking device of Section 6.1.

The paper's Example 4.2, verbatim in this syntax:

.. code-block:: text

    RULE R2
    WHEN INS(beer), DEL(brewery)
    IF NOT (forall x)(x in beer =>
            (exists y)(y in brewery and x.brewery = y.name))
    THEN temp := diff(project(beer, [brewery]), project(brewery, [name]));
         insert(brewery, project(temp, [brewery as name, null, null]))
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algebra.parser import parse_program
from repro.calculus.parser import parse_constraint
from repro.core.rules import ABORT_ACTION, IntegrityRule
from repro.core.triggers import make_trigger_set
from repro.errors import ParseError
from repro.lex import Token, tokenize


def parse_rule(text: str, name: Optional[str] = None) -> IntegrityRule:
    """Parse one RL rule."""
    tokens = tokenize(text)
    index = 0

    def current() -> Token:
        return tokens[index]

    def at_keyword(*words: str) -> bool:
        token = tokens[index]
        return token.kind == "NAME" and token.value.lower() in words

    # -- optional RULE name ---------------------------------------------------
    if at_keyword("rule"):
        index += 1
        if current().kind != "NAME":
            raise ParseError("expected a rule name after RULE")
        name = current().value
        index += 1

    # -- optional WHEN clause ---------------------------------------------------
    triggers = None
    if at_keyword("when"):
        index += 1
        specs: List[Tuple[str, str]] = []
        while True:
            if current().kind != "NAME" or current().value.upper() not in (
                "INS",
                "DEL",
            ):
                raise ParseError(
                    f"expected INS or DEL in WHEN clause, found "
                    f"{current().text!r}"
                )
            kind = current().value.upper()
            index += 1
            if not (current().kind == "OP" and current().value == "("):
                raise ParseError("expected '(' after update type")
            index += 1
            if current().kind != "NAME":
                raise ParseError("expected a relation name in trigger")
            relation = current().value
            index += 1
            if not (current().kind == "OP" and current().value == ")"):
                raise ParseError("expected ')' after trigger relation")
            index += 1
            specs.append((kind, relation))
            if current().kind == "OP" and current().value == ",":
                index += 1
                continue
            break
        triggers = make_trigger_set(specs)

    # -- IF NOT <condition> ------------------------------------------------------
    if not at_keyword("if"):
        raise ParseError("expected IF NOT <condition> in rule")
    index += 1
    if not at_keyword("not"):
        raise ParseError("expected NOT after IF (rules are 'IF NOT c')")
    index += 1
    condition_start = current().position

    # The condition extends to the first depth-0 THEN keyword (or the end).
    depth = 0
    then_index = None
    scan = index
    while tokens[scan].kind != "EOF":
        token = tokens[scan]
        if token.kind == "OP" and token.value in ("(", "[", "{"):
            depth += 1
        elif token.kind == "OP" and token.value in (")", "]", "}"):
            depth -= 1
        elif (
            token.kind == "NAME"
            and token.value.lower() == "then"
            and depth == 0
        ):
            then_index = scan
            break
        scan += 1
    if then_index is None:
        condition_text = text[condition_start:]
        action_tokens_start = None
    else:
        condition_text = text[condition_start : tokens[then_index].position]
        action_tokens_start = then_index + 1
    condition = parse_constraint(condition_text)

    # -- THEN action ---------------------------------------------------------------
    action = ABORT_ACTION
    non_triggering = False
    if action_tokens_start is not None:
        index = action_tokens_start
        if tokens[index].kind == "EOF":
            raise ParseError("THEN clause is empty")
        if (
            tokens[index].kind == "NAME"
            and tokens[index].value.lower() == "abort"
            and tokens[index + 1].kind == "EOF"
        ):
            action = ABORT_ACTION
        else:
            if (
                tokens[index].kind == "NAME"
                and tokens[index].value.lower() in ("nontriggering", "non_triggering")
            ):
                non_triggering = True
                index += 1
            program_text = text[tokens[index].position :]
            program = parse_program(program_text)
            if program.is_empty:
                raise ParseError("THEN clause is empty")
            action = program

    return IntegrityRule(
        condition,
        action=action,
        triggers=triggers,
        name=name,
        non_triggering=non_triggering,
    )


def parse_rules(text: str) -> List[IntegrityRule]:
    """Parse several rules separated by blank lines with 'RULE' headers.

    Every rule after the first must start with its own ``RULE name`` header;
    the text is split on those headers.
    """
    tokens = tokenize(text)
    starts = [
        token.position
        for token in tokens
        if token.kind == "NAME" and token.value.lower() == "rule"
    ]
    if not starts:
        return [parse_rule(text)]
    pieces = []
    for ordinal, start in enumerate(starts):
        end = starts[ordinal + 1] if ordinal + 1 < len(starts) else len(text)
        pieces.append(text[start:end])
    return [parse_rule(piece) for piece in pieces]
