"""Triggering graphs and infinite-triggering suppression (paper Section 6.1).

Def 6.1: the triggering graph of a rule set J is the directed graph whose
vertices are the rules and whose edges are

    (J1, J2)  with  GetTrigP(action(J1)) ∩ triggers(J2) ≠ ∅

— rule J1's violation response performs an update that triggers J2.
Infinite rule triggering can only occur when this graph has a cycle; the
suppression device (Def 6.2) is to declare actions *non-triggering*, which
``GetTrigPX`` maps to the empty trigger set and therefore removes the
vertex's outgoing edges.

An integrity control subsystem validates a rule set by constructing the
graph and reporting the cycles, assisting the designer in removing them
(the paper compares this to Ceri & Widom [4]).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import networkx as nx

from repro.core.triggers import get_trig_px
from repro.errors import TriggerCycleError


class TriggeringGraph:
    """The triggering graph of a set of integrity rules (Def 6.1)."""

    def __init__(self, rules: Sequence):
        self.rules = list(rules)
        self._graph = nx.DiGraph()
        for rule in self.rules:
            self._graph.add_node(rule.name)
        for source in self.rules:
            performed = get_trig_px(source.action_program())
            if not performed:
                continue
            for target in self.rules:
                if performed & target.triggers:
                    self._graph.add_edge(source.name, target.name)

    # -- structure ---------------------------------------------------------------

    @property
    def vertices(self) -> Tuple[str, ...]:
        return tuple(self._graph.nodes)

    @property
    def edges(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._graph.edges)

    def successors(self, rule_name: str) -> Tuple[str, ...]:
        return tuple(self._graph.successors(rule_name))

    # -- analysis ----------------------------------------------------------------

    def cycles(self) -> List[List[str]]:
        """All elementary cycles (each as a list of rule names)."""
        return [list(cycle) for cycle in nx.simple_cycles(self._graph)]

    @property
    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def validate(self) -> None:
        """Raise :class:`TriggerCycleError` when the graph has cycles."""
        found = self.cycles()
        if found:
            raise TriggerCycleError([cycle + [cycle[0]] for cycle in found])

    def triggering_depth(self) -> int:
        """Longest triggering chain (0 for rule sets with no edges).

        On an acyclic graph this bounds the number of ModP rounds a single
        transaction can cause; used by the modification benchmarks.
        """
        if not self.is_acyclic:
            raise TriggerCycleError(
                [cycle + [cycle[0]] for cycle in self.cycles()]
            )
        if self._graph.number_of_edges() == 0:
            return 0
        return nx.dag_longest_path_length(self._graph)

    def suggest_non_triggering(self) -> List[str]:
        """Rules whose actions, if declared non-triggering, break all cycles.

        A simple, explainable heuristic (the paper's subsystem "assists the
        user in removing the cycles"): greedily pick the rule participating
        in the most remaining cycles.
        """
        remaining = [set(cycle) for cycle in self.cycles()]
        suggestions: List[str] = []
        while remaining:
            counts: Dict[str, int] = {}
            for cycle in remaining:
                for name in cycle:
                    counts[name] = counts.get(name, 0) + 1
            best = max(sorted(counts), key=lambda name: counts[name])
            suggestions.append(best)
            remaining = [cycle for cycle in remaining if best not in cycle]
        return suggestions

    def __repr__(self) -> str:
        return (
            f"TriggeringGraph({self._graph.number_of_nodes()} rules, "
            f"{self._graph.number_of_edges()} edges, "
            f"{'acyclic' if self.is_acyclic else 'CYCLIC'})"
        )
