"""Transaction modification: ModT / ModP / TrigP (paper Algs 5.1-5.3, 6.2).

The central recursion of the paper::

    ModT(T, J)  =  ModP(T↓, J)↑

    ModP(P, J)  =  P                          if TrigP(P, J) = Pε
                   P ⊕ ModP(TrigP(P, J), J)   otherwise

``TrigP`` produces the integrity-control program for the updates performed
by ``P``; because that program may itself contain updates, it is modified
recursively until a fixpoint (an appended program that triggers no rules).

Two selector back-ends implement ``TrigP``:

* :class:`DynamicSelector` — Alg 5.2/5.3 verbatim: ``SelRS`` picks the rules
  whose trigger set meets ``GetTrigP(P)``, and ``TrOptRS`` optimizes and
  translates them *on every modification* — the naive scheme the paper
  improves upon in §6.2;
* :class:`StaticSelector` — Alg 6.2: rules were compiled to integrity
  programs at definition time; ``SelPS``/``ConcatP`` just look them up.

Both selectors return the appended pieces individually so the recursion can
honour per-piece non-triggering flags (Def 6.2) even after concatenation.

Termination: on an acyclic triggering graph the recursion reaches a
fixpoint; a cyclic rule set would recurse forever, so ``mod_p`` enforces a
round limit and reports the offending rules (Section 6.1 recommends
validating the graph up front — see
:mod:`repro.core.triggering_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.algebra.programs import EMPTY_PROGRAM, Program, bracket, concat, debracket
from repro.core.triggers import TriggerSet, get_trig_px
from repro.engine.schema import DatabaseSchema
from repro.engine.transaction import Transaction
from repro.errors import IntegrityError

DEFAULT_MAX_ROUNDS = 64


@dataclass
class ModificationStats:
    """Observability of one ModT run (consumed by benches and tests)."""

    rounds: int = 0
    rules_selected: int = 0
    statements_appended: int = 0
    selected_rule_names: List[str] = field(default_factory=list)
    # Translation-fallback visibility: appended CheckConstraint statements,
    # and the subset whose formula has genuinely untranslatable residue —
    # i.e. will partially evaluate through the naive model checker even
    # under the planned engine (see repro.calculus.planned).
    fallback_statements: int = 0
    naive_fallback_statements: int = 0
    fallback_rule_names: List[str] = field(default_factory=list)


class DynamicSelector:
    """Alg 5.2/5.3: select, optimize, and translate rules per modification.

    ``SelRS(P, J) = {J in J | triggers(J) ∩ GetTrigP(P) ≠ ∅}`` followed by
    ``TrOptRS``: per-rule ``TransR(OptR(J))``, concatenated.
    """

    def __init__(
        self,
        rules: Sequence,
        db: DatabaseSchema,
        optimize: bool = True,
        allow_fallback: bool = True,
    ):
        self.rules = list(rules)
        self.db = db
        self.optimize = optimize
        self.allow_fallback = allow_fallback

    def select(self, performed: TriggerSet) -> List[Tuple[str, Program]]:
        from repro.core.optimization import opt_r
        from repro.core.translation import trans_r

        pieces: List[Tuple[str, Program]] = []
        for rule in self.rules:
            if rule.triggers & performed:
                candidate = opt_r(rule) if self.optimize else rule
                program = trans_r(
                    candidate, self.db, allow_fallback=self.allow_fallback
                )
                if self.optimize:
                    from repro.algebra.optimizer import optimize_program

                    program = optimize_program(program)
                pieces.append((rule.name, program))
        return pieces


class StaticSelector:
    """Alg 6.2: look up precompiled integrity programs (SelPS/ConcatP)."""

    def __init__(self, store):
        self.store = store

    def select(self, performed: TriggerSet) -> List[Tuple[str, Program]]:
        pieces: List[Tuple[str, Program]] = []
        for integrity_program in self.store:
            matched = integrity_program.triggers & performed
            if matched:
                piece = integrity_program.action_for(matched)
                if not piece.is_empty:
                    pieces.append((integrity_program.name, piece))
        return pieces


def mod_p(
    program: Program,
    selector,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    stats: Optional[ModificationStats] = None,
) -> Program:
    """ModP (Alg 5.1): extend ``program`` until no further rules trigger."""
    result = program
    performed = get_trig_px(program)
    rounds = 0
    while performed:
        pieces = selector.select(performed)
        if not pieces:
            break
        rounds += 1
        if rounds > max_rounds:
            names = sorted({name for name, _ in pieces})
            raise IntegrityError(
                f"transaction modification did not reach a fixpoint after "
                f"{max_rounds} rounds; rules still triggering: {names} "
                f"(cyclic triggering graph? see TriggeringGraph.validate)"
            )
        appended = concat(*[piece for _, piece in pieces])
        result = result.concat(appended)
        if stats is not None:
            from repro.core.translation import CheckConstraint

            stats.rounds = rounds
            stats.rules_selected += len(pieces)
            stats.statements_appended += len(appended)
            stats.selected_rule_names.extend(name for name, _ in pieces)
            for name, piece in pieces:
                fallbacks = [
                    statement
                    for statement in piece
                    if isinstance(statement, CheckConstraint)
                ]
                if fallbacks:
                    stats.fallback_statements += len(fallbacks)
                    stats.naive_fallback_statements += sum(
                        1 for statement in fallbacks if statement.naive_residue
                    )
                    if name not in stats.fallback_rule_names:
                        stats.fallback_rule_names.append(name)
        # The next round reacts to the updates of the appended pieces only,
        # respecting each piece's own non-triggering flag.
        performed = frozenset().union(
            *[get_trig_px(piece) for _, piece in pieces]
        )
    return result


def mod_t(
    transaction: Transaction,
    selector,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    stats: Optional[ModificationStats] = None,
) -> Transaction:
    """ModT (Alg 5.1): ``ModP(T↓, J)↑`` — debracket, modify, rebracket."""
    body = debracket(transaction)
    modified = mod_p(body, selector, max_rounds=max_rounds, stats=stats)
    if modified is body:
        return transaction
    return bracket(modified, name=f"{transaction.name}+ic")
