"""The audit scheduler: commit log → per-rule audit tasks → worker pool.

This is the concurrent half of the enforcement pipeline.  The engine's
:class:`~repro.engine.commitlog.CommitLog` records every committed net
delta; this module drains it into independent ``(rule, Δ)`` audit tasks —
the unit of distributable work Martinenghi's simplified-checking survey
identifies — and executes them on a thread pool.

Why this is safe without locking base relations: each task evaluates a
side-effect-free delta (or fallback) program through its own
:class:`~repro.engine.session.DeltaView`; base relations are only mutated
by the owning session at commit time.  The *consistency guarantee* is
therefore per drain: verdicts describe the delta evaluated against the
database state as of the drain (or later, if the owner keeps committing
while workers run) — ``audit="sync"`` gives strict per-commit verdicts,
``deferred``/``async`` give batched, possibly coalesced verdicts.

Scheduling policy: per rule, the scheduler prices the audit with the cost
model (:func:`repro.parallel.cost_model.predict_audit_time` under the
observed |Δ|) and runs predicted-cheap audits *inline* on the draining
thread — a thread-pool handoff costs more than a vacuous or tiny delta
check — while predicted-expensive audits fan out to workers.  Worker
exceptions are never dropped: a poisoned task surfaces as an
:class:`AuditOutcome` with ``error`` set, and commit records evicted from
the bounded log before being drained surface as an explicit gap outcome.

Verdict merging is deterministic: outcomes are ordered by (first covered
commit sequence, rule registration order), regardless of worker completion
order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.engine.commitlog import (
    batch_sequences,
    coalesce_differentials,
    take_batches,
)
from repro.parallel.cost_model import MODERN_2026, predict_audit_time

#: Estimated cost of handing one task to a pool worker (queue + wakeup).
#: Audits predicted cheaper than this run inline on the draining thread.
DISPATCH_OVERHEAD_SECONDS = 1.5e-4

#: Default worker count for the audit pool.
DEFAULT_WORKERS = 4


class RuleAuditTask:
    """One independent, side-effect-free audit unit: a rule and a delta.

    ``program`` is the rule's matched differential program, or None for the
    full-check fallback (compensating rules, non-incrementalizable shapes).
    Each :meth:`run` builds a fresh
    :class:`~repro.engine.session.DeltaView`, so concurrent tasks share no
    mutable state beyond the (frozen) differentials and the base relations.
    """

    __slots__ = ("controller", "rule", "program", "database", "differentials", "engine")

    def __init__(self, controller, rule, program, database, differentials, engine):
        self.controller = controller
        self.rule = rule
        self.program = program
        self.database = database
        self.differentials = differentials
        self.engine = engine

    @property
    def rule_name(self) -> str:
        return self.rule.name

    @property
    def kind(self) -> str:
        """``"delta"`` (runs a differential program) or ``"full"``."""
        return "delta" if self.program is not None else "full"

    def pricing_program(self):
        """The program whose plans bound this task's work, for cost pricing."""
        if self.program is not None:
            return self.program
        store = self.controller.store
        if self.rule.name in store:
            return store.get(self.rule.name).program
        return None

    def run(self) -> Tuple[bool, tuple]:
        """Execute the audit; returns ``(violated, violating_sample)``."""
        from repro.engine.session import DeltaView

        view = DeltaView(self.database, self.differentials, engine=self.engine)
        if self.program is not None:
            return self.controller._program_outcome(self.program, view)
        return self.controller._is_violated(self.rule, view, self.engine), ()

    def __repr__(self) -> str:
        return f"RuleAuditTask({self.rule_name}, {self.kind})"


class AuditOutcome:
    """The verdict of one audit task over one commit batch."""

    __slots__ = (
        "rule",
        "sequences",
        "violated",
        "violations",
        "error",
        "mode",
        "seconds",
    )

    def __init__(
        self,
        rule: Optional[str],
        sequences: tuple,
        violated: Optional[bool],
        violations: tuple = (),
        error: Optional[str] = None,
        mode: str = "inline",
        seconds: float = 0.0,
    ):
        self.rule = rule
        self.sequences = sequences
        self.violated = violated
        self.violations = violations
        self.error = error
        self.mode = mode
        self.seconds = seconds

    @property
    def failed(self) -> bool:
        """True when the audit itself failed (poison task / log gap)."""
        return self.error is not None

    @property
    def ok(self) -> bool:
        return not self.failed and not self.violated

    def __repr__(self) -> str:
        span = (
            f"#{self.sequences[0]}"
            if len(self.sequences) == 1
            else f"#{self.sequences[0]}..{self.sequences[-1]}"
            if self.sequences
            else "#?"
        )
        if self.failed:
            state = f"FAILED: {self.error}"
        elif self.violated:
            state = f"VIOLATED ({len(self.violations)} sample tuple(s))"
        else:
            state = "ok"
        return f"AuditOutcome({self.rule}, {span}, {state}, {self.mode})"


class AuditScheduler:
    """Drains a database's commit log into concurrent per-rule audits."""

    def __init__(
        self,
        controller,
        database,
        workers: int = DEFAULT_WORKERS,
        coalesce: bool = True,
        cost_model=MODERN_2026,
        dispatch_overhead: float = DISPATCH_OVERHEAD_SECONDS,
        start_sequence: Optional[int] = None,
    ):
        self.controller = controller
        self.database = database
        self.workers = max(int(workers), 1)
        self.coalesce = coalesce
        self.cost_model = cost_model
        self.dispatch_overhead = dispatch_overhead
        log = database.commit_log
        if start_sequence is None:
            first = log.first_sequence
            start_sequence = first if first is not None else log.next_sequence
        self._cursor = start_sequence
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        # Submission-ordered (future | outcome) slots not yet collected by
        # wait(); preserving submission order is what makes async verdict
        # merging deterministic.
        self._outstanding: List[object] = []
        self.history: List[AuditOutcome] = []
        self.drains = 0
        self.fanned_out = 0
        self.ran_inline = 0

    # -- introspection ---------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Sequence number of the next commit this scheduler will audit."""
        return self._cursor

    def pending(self) -> int:
        """Commits recorded but not yet drained."""
        records, lost = self.database.commit_log.since(self._cursor)
        return len(records) + lost

    # -- draining ----------------------------------------------------------------

    def drain(
        self,
        asynchronous: bool = False,
        coalesce: Optional[bool] = None,
    ) -> List[AuditOutcome]:
        """Audit every commit recorded since the last drain.

        Synchronous drains (the default) run every task on the calling
        thread and return the completed outcomes.  Asynchronous drains
        submit predicted-expensive tasks to the worker pool, run
        predicted-cheap ones inline, and return immediately with the
        already-completed outcomes; :meth:`wait` collects the rest.  Either
        way every outcome also lands in :attr:`history`, in deterministic
        order.
        """
        if coalesce is None:
            coalesce = self.coalesce
        with self._lock:
            records, lost = self.database.commit_log.since(self._cursor)
            if records:
                self._cursor = records[-1].sequence + 1
            else:
                self._cursor += lost
            self.drains += 1
        completed: List[AuditOutcome] = []
        if lost:
            gap = AuditOutcome(
                None,
                (),
                None,
                error=(
                    f"{lost} commit(s) evicted from the bounded log before "
                    f"being audited; raise CommitLog capacity or drain more "
                    f"often"
                ),
                mode="gap",
            )
            completed.append(gap)
            if asynchronous:
                # Async consumers collect through wait(): the gap must
                # travel the same path or eviction becomes a silent drop.
                with self._lock:
                    self._outstanding.append(gap)
            else:
                self._record(gap)
        for batch in take_batches(records, coalesce):
            completed.extend(self._drain_batch(batch, asynchronous))
        return completed

    def _drain_batch(self, batch, asynchronous: bool) -> List[AuditOutcome]:
        if len(batch) == 1:
            differentials = batch[0].differentials
        else:
            differentials = coalesce_differentials(batch, self.database)
        sequences = batch_sequences(batch)
        tasks = self.controller.audit_tasks(self.database, differentials)
        completed: List[AuditOutcome] = []
        delta_sizes = _delta_sizes(differentials)
        for task in tasks:
            if asynchronous and self._prefer_fanout(task, delta_sizes):
                self.fanned_out += 1
                future = self._pool().submit(
                    _execute, task, sequences, "worker"
                )
                with self._lock:
                    self._outstanding.append(future)
            else:
                self.ran_inline += 1
                mode = "inline" if asynchronous else "sync"
                outcome = _execute(task, sequences, mode)
                completed.append(outcome)
                if asynchronous:
                    with self._lock:
                        self._outstanding.append(outcome)
                else:
                    self._record(outcome)
        return completed

    def wait(self) -> List[AuditOutcome]:
        """Block until all submitted audits finish; return them in order.

        The returned list covers everything handed out by asynchronous
        drains since the last :meth:`wait` (inline and worker outcomes
        alike), ordered by submission — i.e. by (commit sequence, rule
        registration order) — no matter which worker finished first; the
        merged order is also what lands in :attr:`history`.
        """
        with self._lock:
            slots = self._outstanding
            self._outstanding = []
        outcomes = [
            slot.result() if hasattr(slot, "result") else slot
            for slot in slots
        ]
        for outcome in outcomes:
            self._record(outcome)
        return outcomes

    def close(self) -> None:
        """Shut the worker pool down (outstanding audits complete first)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- internals -----------------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-audit",
            )
        return self._executor

    def _prefer_fanout(self, task: RuleAuditTask, delta_sizes) -> bool:
        """Fan out iff the predicted audit cost amortizes the dispatch."""
        program = task.pricing_program()
        if program is None:
            return True  # unpriceable: assume expensive
        try:
            predicted = predict_audit_time(
                program,
                model=self.cost_model,
                database=self.database,
                deltas=delta_sizes,
            )
        except Exception:
            return True
        predicted -= self.cost_model.startup
        return predicted >= self.dispatch_overhead

    def _record(self, outcome: AuditOutcome) -> None:
        with self._lock:
            self.history.append(outcome)

    def __repr__(self) -> str:
        return (
            f"AuditScheduler(cursor=#{self._cursor}, workers={self.workers}, "
            f"{len(self.history)} verdicts, inline={self.ran_inline}, "
            f"fanned_out={self.fanned_out})"
        )


def _execute(task: RuleAuditTask, sequences: tuple, mode: str) -> AuditOutcome:
    """Run one task, converting any exception into an audit failure."""
    started = time.perf_counter()
    try:
        violated, violations = task.run()
        return AuditOutcome(
            task.rule_name,
            sequences,
            violated,
            violations=violations,
            mode=mode,
            seconds=time.perf_counter() - started,
        )
    except BaseException as error:  # poison task: surface, never drop
        return AuditOutcome(
            task.rule_name,
            sequences,
            None,
            error=f"{type(error).__name__}: {error}",
            mode=mode,
            seconds=time.perf_counter() - started,
        )


def _delta_sizes(differentials) -> dict:
    """``{"R@plus": |Δ⁺|, "R@minus": |Δ⁻|}`` for cost-model pricing."""
    sizes: dict = {}
    for base, (plus, minus) in differentials.items():
        if plus is not None:
            sizes[f"{base}@plus"] = float(len(plus))
        if minus is not None:
            sizes[f"{base}@minus"] = float(len(minus))
    return sizes
