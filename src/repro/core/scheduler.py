"""The audit scheduler: commit log → per-rule audit tasks → executor.

This is the concurrent half of the enforcement pipeline.  The engine's
:class:`~repro.engine.commitlog.CommitLog` records every committed net
delta; this module drains it into independent ``(rule, Δ)`` audit tasks —
the unit of distributable work Martinenghi's simplified-checking survey
identifies — and executes them on one of three executors:

``inline``
    Every task runs on the draining thread.  Zero dispatch cost; no
    overlap.
``thread``
    Predicted-expensive tasks fan out to a thread pool.  Overlaps audit
    work with the committing session, but CPU-bound Python audits still
    serialize on the GIL.
``process``
    Predicted-expensive tasks ship to a pool of worker *processes*
    (:class:`~repro.core.procpool.ProcessAuditExecutor`), each owning a
    shared-nothing replica of the database kept current by replaying the
    commit-record stream.  True multi-core audits, at the price of
    pickling each Δ across a pipe.

Why this is safe without locking base relations: each task evaluates a
side-effect-free delta (or fallback) program through its own
:class:`~repro.engine.session.DeltaView`; base relations are only mutated
by the owning session at commit time.  The *consistency guarantee* is
strict on every arm: each drained batch pins its pre/post epochs
(:meth:`~repro.engine.epochs.EpochManager.pin_span`), so in-process tasks
resolve bare names and ``R@old`` against the exact states the batch's
commits transitioned between even while the owner keeps committing under
the worker threads (the MVCC layer reconstructs the pinned states in
O(Δ); process workers observe exactly the drain-time replica state via
their FIFO-replayed replicas).  Batched ``deferred``/``async`` drains may
still *coalesce* consecutive commits into one audited delta; the audited
states remain the pinned batch boundaries.

Scheduling policy: per rule, the scheduler prices the audit with the cost
model (:func:`repro.parallel.cost_model.predict_audit_time` under the
observed |Δ|) and runs predicted-cheap audits *inline* on the draining
thread — a pool handoff costs more than a vacuous or tiny delta check —
while predicted-expensive audits fan out.  Measured per-task seconds feed
back into the decision as a per-rule EWMA correction factor on the
prediction, the same way observed cardinalities already correct plan
estimates.  Worker exceptions are never dropped: a poisoned task surfaces
as an :class:`AuditOutcome` with ``error`` set, and commit records evicted
from the bounded log before being drained surface as an explicit gap
outcome.

Verdict merging is deterministic: outcomes are ordered by (first covered
commit sequence, rule registration order), regardless of worker completion
order — identical across all three executors.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.engine.commitlog import (
    batch_sequences,
    coalesce_differentials,
    take_batches,
)
from repro.parallel.cost_model import MODERN_2026, predict_audit_time

#: Estimated cost of handing one task to a pool worker (queue + wakeup).
#: Audits predicted cheaper than this run inline on the draining thread.
DISPATCH_OVERHEAD_SECONDS = 1.5e-4

#: Default worker count for the audit pool.
DEFAULT_WORKERS = 4

#: The dispatch arms a scheduler can run audit tasks on.
EXECUTORS = ("inline", "thread", "process")

#: Smoothing for the measured-vs-predicted audit-seconds correction,
#: mirroring DELTA_EWMA_ALPHA on delta-size observations.
AUDIT_EWMA_ALPHA = 0.5


class RuleAuditTask:
    """One independent, side-effect-free audit unit: a rule and a delta.

    ``program`` is the rule's matched differential program, or None for the
    full-check fallback (compensating rules, non-incrementalizable shapes).
    Each :meth:`run` builds a fresh
    :class:`~repro.engine.session.DeltaView`, so concurrent tasks share no
    mutable state beyond the (frozen) differentials and the base relations.
    """

    __slots__ = (
        "controller",
        "rule",
        "program",
        "database",
        "differentials",
        "engine",
        "span",
    )

    def __init__(self, controller, rule, program, database, differentials, engine):
        self.controller = controller
        self.rule = rule
        self.program = program
        self.database = database
        self.differentials = differentials
        self.engine = engine
        # Optional pinned pre/post epoch pair (EpochSpan, retained for this
        # task) making the audit strict under a racing writer; assigned by
        # the scheduler after construction — process-pool workers rebuild
        # tasks against their own replicas and audit without one.
        self.span = None

    @property
    def rule_name(self) -> str:
        return self.rule.name

    @property
    def kind(self) -> str:
        """``"delta"`` (runs a differential program) or ``"full"``."""
        return "delta" if self.program is not None else "full"

    def pricing_program(self):
        """The program whose plans bound this task's work, for cost pricing."""
        if self.program is not None:
            return self.program
        store = self.controller.store
        if self.rule.name in store:
            return store.get(self.rule.name).program
        return None

    def run(self) -> Tuple[bool, tuple]:
        """Execute the audit; returns ``(violated, violating_sample)``."""
        from repro.engine.session import DeltaView
        from repro.errors import EpochUnavailableError

        try:
            view = DeltaView(
                self.database,
                self.differentials,
                engine=self.engine,
                span=self.span,
            )
            if self.program is not None:
                return self.controller._program_outcome(self.program, view)
            return self.controller._is_violated(self.rule, view, self.engine), ()
        except EpochUnavailableError:
            # The pinned window was quiesced away (an out-of-band bulk
            # mutation mid-audit); fall back to the live-state audit the
            # pre-MVCC pipeline always ran.
            if self.span is None:
                raise
            self.release_span()
            return self.run()

    def release_span(self) -> None:
        """Drop this task's retained reference on its epoch span, once."""
        span, self.span = self.span, None
        if span is not None:
            span.release()

    def __repr__(self) -> str:
        return f"RuleAuditTask({self.rule_name}, {self.kind})"


class AuditOutcome:
    """The verdict of one audit task over one commit batch.

    ``mode`` records the audit semantics the task ran under (``"sync"``
    strict per-commit, ``"async"`` batched/deferred, ``"gap"`` for a
    commit-log truncation); ``executor`` records the dispatch arm that
    physically ran it (``"inline"``, ``"thread"``, ``"process"``, or None
    for synthetic outcomes like gaps).
    """

    __slots__ = (
        "rule",
        "sequences",
        "violated",
        "violations",
        "error",
        "mode",
        "executor",
        "seconds",
        "predicted",
    )

    def __init__(
        self,
        rule: Optional[str],
        sequences: tuple,
        violated: Optional[bool],
        violations: tuple = (),
        error: Optional[str] = None,
        mode: str = "sync",
        executor: Optional[str] = "inline",
        seconds: float = 0.0,
        predicted: Optional[float] = None,
    ):
        self.rule = rule
        self.sequences = sequences
        self.violated = violated
        self.violations = violations
        self.error = error
        self.mode = mode
        self.executor = executor
        self.seconds = seconds
        self.predicted = predicted

    @property
    def failed(self) -> bool:
        """True when the audit itself failed (poison task / log gap)."""
        return self.error is not None

    @property
    def ok(self) -> bool:
        return not self.failed and not self.violated

    def __repr__(self) -> str:
        span = (
            f"#{self.sequences[0]}"
            if len(self.sequences) == 1
            else f"#{self.sequences[0]}..{self.sequences[-1]}"
            if self.sequences
            else "#?"
        )
        if self.failed:
            state = f"FAILED: {self.error}"
        elif self.violated:
            state = f"VIOLATED ({len(self.violations)} sample tuple(s))"
        else:
            state = "ok"
        where = self.mode if self.executor is None else f"{self.mode}/{self.executor}"
        return f"AuditOutcome({self.rule}, {span}, {state}, {where})"


class AuditScheduler:
    """Drains a database's commit log into concurrent per-rule audits."""

    def __init__(
        self,
        controller,
        database,
        workers: int = DEFAULT_WORKERS,
        coalesce: bool = True,
        cost_model=MODERN_2026,
        dispatch_overhead: float = DISPATCH_OVERHEAD_SECONDS,
        start_sequence: Optional[int] = None,
        executor: str = "thread",
        start_method: Optional[str] = None,
        shm_min_bytes: Optional[int] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.controller = controller
        self.database = database
        self.workers = max(int(workers), 1)
        self.coalesce = coalesce
        self.cost_model = cost_model
        self.dispatch_overhead = dispatch_overhead
        self.executor = executor
        self.start_method = start_method
        self.shm_min_bytes = shm_min_bytes
        log = database.commit_log
        if start_sequence is None:
            first = log.first_sequence
            start_sequence = first if first is not None else log.next_sequence
        self._cursor = start_sequence
        self._lock = threading.Lock()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool = None
        # Per-rule EWMA of measured/predicted audit seconds; multiplies the
        # next prediction before it meets the dispatch threshold.
        self._corrections: Dict[str, float] = {}
        # Submission-ordered (future | outcome) slots not yet collected by
        # wait(); preserving submission order is what makes async verdict
        # merging deterministic.
        self._outstanding: List[object] = []
        self.history: List[AuditOutcome] = []
        self.drains = 0
        self.fanned_out = 0
        self.ran_inline = 0

    # -- introspection ---------------------------------------------------------

    @property
    def cursor(self) -> int:
        """Sequence number of the next commit this scheduler will audit."""
        return self._cursor

    @property
    def _consumer_name(self) -> str:
        """Stable retention-hold name on the database's write-ahead log."""
        return "audit-scheduler"

    def pending(self) -> int:
        """Commits recorded but not yet drained."""
        records, lost = self.database.commit_log.since(self._cursor)
        return len(records) + lost

    @property
    def audit_time_corrections(self) -> Dict[str, float]:
        """Per-rule EWMA of measured/predicted audit seconds (read-only)."""
        with self._lock:
            return dict(self._corrections)

    # -- draining ----------------------------------------------------------------

    def drain(
        self,
        asynchronous: bool = False,
        coalesce: Optional[bool] = None,
    ) -> List[AuditOutcome]:
        """Audit every commit recorded since the last drain.

        Synchronous drains (the default) run every task on the calling
        thread and return the completed outcomes.  Asynchronous drains
        submit predicted-expensive tasks to the configured executor's
        pool, run predicted-cheap ones inline, and return immediately with
        the already-completed outcomes; :meth:`wait` collects the rest.
        Either way every outcome also lands in :attr:`history`, in
        deterministic order.
        """
        if coalesce is None:
            coalesce = self.coalesce
        with self._lock:
            records, lost = self.database.commit_log.since(self._cursor)
            if records:
                self._cursor = records[-1].sequence + 1
            else:
                self._cursor += lost
            self.drains += 1
        wal = getattr(self.database, "wal", None)
        if wal is not None:
            # Retention hold on the durable log: segments below the audit
            # cursor are replayable without us, so the WAL may purge them.
            wal.advance_consumer(self._consumer_name, self._cursor)
        if self._process_pool is not None:
            # Keep worker replicas current *before* this drain's tasks are
            # submitted: FIFO inboxes then guarantee each task observes
            # exactly the drain-time state.
            if lost:
                self._process_pool.resync(self.database)
            elif records:
                self._process_pool.replicate(records)
        completed: List[AuditOutcome] = []
        if lost:
            gap = AuditOutcome(
                None,
                (),
                None,
                error=(
                    f"{lost} commit(s) evicted from the bounded log before "
                    f"being audited; raise CommitLog capacity or drain more "
                    f"often"
                ),
                mode="gap",
                executor=None,
            )
            completed.append(gap)
            if asynchronous:
                # Async consumers collect through wait(): the gap must
                # travel the same path or eviction becomes a silent drop.
                with self._lock:
                    self._outstanding.append(gap)
            else:
                self._record(gap)
        for batch in take_batches(records, coalesce):
            completed.extend(self._drain_batch(batch, asynchronous))
        return completed

    def _drain_batch(self, batch, asynchronous: bool) -> List[AuditOutcome]:
        if len(batch) == 1:
            differentials = batch[0].differentials
        else:
            differentials = coalesce_differentials(batch, self.database)
        sequences = batch_sequences(batch)
        tasks = self.controller.audit_tasks(self.database, differentials)
        completed: List[AuditOutcome] = []
        delta_sizes = _delta_sizes(differentials)
        # Pin the batch's pre/post epochs so every in-process task audits
        # exactly the states its commits transitioned between, even while
        # the owning session keeps committing under the worker threads.
        # None when the batch's entries are no longer retained (e.g. a
        # scheduler attached long after the commits); tasks then fall back
        # to the live-state audit.
        span = None
        epochs = getattr(self.database, "epochs", None)
        if epochs is not None and sequences:
            span = epochs.pin_span(sequences[0], sequences[-1])
        try:
            for task in tasks:
                predicted = (
                    self.predicted_audit_seconds(task, delta_sizes)
                    if asynchronous
                    else None
                )
                if (
                    asynchronous
                    and self.executor != "inline"
                    and self._prefer_fanout(task, predicted)
                ):
                    self.fanned_out += 1
                    if self.executor == "process":
                        # Process workers rebuild the task against their
                        # FIFO-replayed replica (already strictly at the
                        # drain-time state); no span crosses the pipe.
                        future = self._processes().submit(
                            task, sequences, mode="async", predicted=predicted
                        )
                    else:
                        if span is not None:
                            task.span = span.retain()
                        future = self._pool().submit(
                            _execute, task, sequences, "async", "thread", predicted
                        )
                    with self._lock:
                        self._outstanding.append(future)
                else:
                    self.ran_inline += 1
                    if span is not None:
                        task.span = span.retain()
                    mode = "async" if asynchronous else "sync"
                    outcome = _execute(task, sequences, mode, "inline", predicted)
                    completed.append(outcome)
                    if asynchronous:
                        with self._lock:
                            self._outstanding.append(outcome)
                    else:
                        self._record(outcome)
        finally:
            if span is not None:
                span.release()  # the creator's reference; tasks hold their own
        return completed

    def wait(self) -> List[AuditOutcome]:
        """Block until all submitted audits finish; return them in order.

        The returned list covers everything handed out by asynchronous
        drains since the last :meth:`wait` (inline and pool outcomes
        alike), ordered by submission — i.e. by (commit sequence, rule
        registration order) — no matter which worker finished first; the
        merged order is also what lands in :attr:`history`.
        """
        with self._lock:
            slots = self._outstanding
            self._outstanding = []
        outcomes = [
            slot.result() if hasattr(slot, "result") else slot
            for slot in slots
        ]
        for outcome in outcomes:
            self._record(outcome)
        return outcomes

    def start(self) -> "AuditScheduler":
        """Eagerly create the configured executor's pool.

        Useful before timed regions: process-pool creation ships a full
        database replica and rebuilds every rule plan per worker, a cost
        that belongs to setup, not to the first drain.
        """
        if self.executor == "thread":
            self._pool()
        elif self.executor == "process":
            self._processes()
        return self

    def close(self) -> None:
        """Deterministic shutdown: drain in-flight audits, stop executors.

        Outstanding asynchronous tasks are collected into
        :attr:`history` first (same deterministic order as :meth:`wait`),
        then whichever pools are live — thread, process, or both — are shut
        down; no worker threads or processes are leaked.  The scheduler
        remains usable afterwards: the next drain lazily recreates its
        pool.
        """
        self.wait()
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None
        wal = getattr(self.database, "wal", None)
        if wal is not None:
            # Drop the retention hold; a later drain re-registers it.
            wal.release_consumer(self._consumer_name)

    def __enter__(self) -> "AuditScheduler":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- internals -----------------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-audit",
            )
        return self._thread_pool

    def _processes(self):
        if self._process_pool is None:
            from repro.core.procpool import ProcessAuditExecutor

            self._process_pool = ProcessAuditExecutor(
                self.controller,
                self.database,
                workers=self.workers,
                start_method=self.start_method,
                shm_min_bytes=self.shm_min_bytes,
            )
        return self._process_pool

    def predicted_audit_seconds(
        self, task: RuleAuditTask, delta_sizes
    ) -> Optional[float]:
        """Predicted net task seconds (model prediction minus startup),
        *before* the EWMA correction; None when the task is unpriceable."""
        program = task.pricing_program()
        if program is None:
            return None
        try:
            predicted = predict_audit_time(
                program,
                model=self.cost_model,
                database=self.database,
                deltas=delta_sizes,
            )
        except Exception:
            return None
        return max(predicted - self.cost_model.startup, 0.0)

    def _prefer_fanout(
        self, task: RuleAuditTask, predicted: Optional[float]
    ) -> bool:
        """Fan out iff the corrected predicted cost amortizes the dispatch."""
        if predicted is None:
            return True  # unpriceable: assume expensive
        with self._lock:
            correction = self._corrections.get(task.rule_name, 1.0)
        return predicted * correction >= self.dispatch_overhead

    def _record(self, outcome: AuditOutcome) -> None:
        with self._lock:
            self.history.append(outcome)
            if (
                outcome.rule is not None
                and not outcome.failed
                and outcome.predicted is not None
                and outcome.predicted > 0.0
                and outcome.seconds > 0.0
            ):
                ratio = outcome.seconds / outcome.predicted
                previous = self._corrections.get(outcome.rule)
                if previous is None:
                    self._corrections[outcome.rule] = ratio
                else:
                    self._corrections[outcome.rule] = (
                        AUDIT_EWMA_ALPHA * ratio
                        + (1.0 - AUDIT_EWMA_ALPHA) * previous
                    )

    def __repr__(self) -> str:
        return (
            f"AuditScheduler(cursor=#{self._cursor}, "
            f"executor={self.executor}, workers={self.workers}, "
            f"{len(self.history)} verdicts, inline={self.ran_inline}, "
            f"fanned_out={self.fanned_out})"
        )


def _execute(
    task: RuleAuditTask,
    sequences: tuple,
    mode: str,
    executor: str = "inline",
    predicted: Optional[float] = None,
) -> AuditOutcome:
    """Run one task, converting any exception into an audit failure."""
    started = time.perf_counter()
    try:
        violated, violations = task.run()
        return AuditOutcome(
            task.rule_name,
            sequences,
            violated,
            violations=violations,
            mode=mode,
            executor=executor,
            seconds=time.perf_counter() - started,
            predicted=predicted,
        )
    except BaseException as error:  # poison task: surface, never drop
        return AuditOutcome(
            task.rule_name,
            sequences,
            None,
            error=f"{type(error).__name__}: {error}",
            mode=mode,
            executor=executor,
            seconds=time.perf_counter() - started,
            predicted=predicted,
        )
    finally:
        # Unpin the task's epoch window as soon as the verdict exists so
        # reclamation never waits on verdict *collection*.
        task.release_span()


def _delta_sizes(differentials) -> dict:
    """``{"R@plus": |Δ⁺|, "R@minus": |Δ⁻|}`` for cost-model pricing."""
    sizes: dict = {}
    for base, (plus, minus) in differentials.items():
        if plus is not None:
            sizes[f"{base}@plus"] = float(len(plus))
        if minus is not None:
            sizes[f"{base}@minus"] = float(len(minus))
    return sizes
