"""Shared-memory blob transport for the process audit executor.

Commit-record replication and coalesced Δ blobs cross the coordinator →
worker boundary as pickles.  Below a size threshold a pipe send is
cheapest; above it, every pipe transfer pays an extra copy per worker
through the OS pipe buffer.  :class:`ShmTransport` ships large blobs
once into a :class:`multiprocessing.shared_memory.SharedMemory` segment
and sends only a ``(name, size)`` descriptor down the pipe; each worker
attaches, copies the bytes out, and acknowledges.

Reference counting: a segment shipped to N readers carries ``remaining
= N`` (plus one per re-ship of a cached blob); every worker ack
decrements it, and the coordinator unlinks the segment when it reaches
zero — so segments live exactly as long as a drain is in flight.
:meth:`release_all` force-unlinks whatever is left (worker death,
shutdown), and the tests assert no segment survives a drained pool.

Workers attach with ``track=False`` where the runtime supports it
(3.13+); earlier CPython registers an attached segment with the
*worker's* resource tracker, which would try to unlink it again at
worker exit — :func:`load` unregisters the attachment to keep ownership
solely with the coordinator.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - exercised by presence, not absence
    from multiprocessing import resource_tracker, shared_memory

    SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - platforms without shm
    resource_tracker = None
    shared_memory = None
    SHM_AVAILABLE = False

#: Blobs at or above this many bytes ship via shared memory; smaller ones
#: stay on the pipe (descriptor + attach overhead would dominate).
SHM_MIN_BYTES = 1 << 16

_ATTACH_TRACKS = None  # lazily probed: does SharedMemory accept track=?


def _attach(name: str):
    """Attach to an existing segment without adopting tracker ownership."""
    global _ATTACH_TRACKS
    if _ATTACH_TRACKS is None:
        try:
            segment = shared_memory.SharedMemory(name=name, track=False)
            _ATTACH_TRACKS = True
            return segment
        except TypeError:
            _ATTACH_TRACKS = False
    if _ATTACH_TRACKS:
        return shared_memory.SharedMemory(name=name, track=False)
    segment = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass
    return segment


def load(descriptor) -> Tuple[bytes, Optional[str]]:
    """Worker side: materialize a shipped blob.

    Returns ``(blob, ack)`` where ``ack`` is the segment name to
    acknowledge back to the coordinator (None for pipe shipments).
    """
    kind = descriptor[0]
    if kind == "pipe":
        return descriptor[1], None
    _, name, size = descriptor
    segment = _attach(name)
    try:
        blob = bytes(segment.buf[:size])
    finally:
        segment.close()
    return blob, name


class ShmTransport:
    """Coordinator-side segment bookkeeping (create / reship / ack / drop)."""

    def __init__(self, min_bytes: int = SHM_MIN_BYTES, enabled: bool = True):
        self.min_bytes = min_bytes
        self.enabled = enabled and SHM_AVAILABLE
        self._segments: Dict[str, list] = {}  # name -> [segment, remaining]
        self._lock = threading.Lock()
        #: Total bytes that went through shared memory (for benchmarks).
        self.bytes_shipped = 0

    def ship(self, blob: bytes, readers: int):
        """Wrap ``blob`` for ``readers`` recipients; returns a descriptor."""
        if not self.enabled or len(blob) < self.min_bytes or readers < 1:
            return ("pipe", blob)
        try:
            segment = shared_memory.SharedMemory(create=True, size=len(blob))
        except Exception:  # pragma: no cover - /dev/shm full or missing
            return ("pipe", blob)
        segment.buf[: len(blob)] = blob
        with self._lock:
            self._segments[segment.name] = [segment, readers]
            self.bytes_shipped += len(blob)
        return ("shm", segment.name, len(blob))

    def reship(self, descriptor, readers: int = 1):
        """Send an already-shipped descriptor to ``readers`` more recipients."""
        if descriptor[0] != "shm":
            return descriptor
        with self._lock:
            entry = self._segments.get(descriptor[1])
            if entry is None:  # already drained: blob must be re-shipped
                return None
            entry[1] += readers
        return descriptor

    def ack(self, name: str) -> None:
        """One reader finished with ``name``; unlink at zero."""
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
        self._destroy(entry[0])

    def live_segments(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._segments)

    def release_all(self) -> None:
        """Force-unlink every outstanding segment (shutdown path)."""
        with self._lock:
            entries = list(self._segments.values())
            self._segments.clear()
        for segment, _ in entries:
            self._destroy(segment)

    @staticmethod
    def _destroy(segment) -> None:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - double unlink race
            pass
