"""Rule translation: TransR, TransC, CalcToAlg (paper Algs 5.5-5.6, Table 1).

``trans_r`` translates an integrity rule into an extended relational algebra
program.  Aborting rules translate their condition through ``trans_c`` into
an ``alarm`` program (Def 5.1); compensating rules use their violation
response action directly (the paper's ``TransCA``: "in most practical cases
the program produced ... can be equal to the violation response action").

``trans_c`` implements Alg 5.6.  For a universally quantified constraint
``(forall x)(c'(x))`` it emits ``alarm(CalcToAlg({x | not c'(x)}))`` — the
alarm fires exactly when a *violating* tuple exists.  For an existentially
quantified constraint it emits
``alarm(select(CNT(CalcToAlg({x | c'(x)})), cnt = 0))`` — the alarm fires
when no witness exists.  Quantifier-free constraints over aggregate terms
(Table 1's last two rows) select the negated condition over the single-row
aggregate relation(s).

``calc_to_alg`` is the tuple-calculus-to-algebra translation the paper
delegates to the literature ([21, 12, 15]).  It covers the range-restricted
fragment in *guarded normal form*: after negation normalization the set
body is a conjunction of membership anchors, local atoms, (negated)
existential subformulas — producing selections, semijoins, antijoins, set
differences and intersections — and aggregate comparisons (producing
semijoins against single-row aggregate relations).  Formulas outside the
fragment fall back to a :class:`CheckConstraint` statement (an honest
engineering fallback, flagged so callers can forbid it); under the planned
engine even that fallback decomposes the formula via
:mod:`repro.calculus.planned` and evaluates the translatable subformulas
through compiled plans, so the direct evaluator only ever sees the
genuinely untranslatable residue.

The produced forms coincide with the paper's Table 1 on all seven construct
families; ``table1_form`` additionally emits the *verbatim* table shapes
(e.g. the θ-join form for row 4) for the regeneration benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm, Statement
from repro.calculus import ast as C
from repro.calculus.analysis import free_variables
from repro.calculus.evaluation import evaluate_constraint
from repro.engine import naming
from repro.engine.schema import DatabaseSchema, RelationSchema
from repro.errors import TranslationError


# ---------------------------------------------------------------------------
# Negation normalization
# ---------------------------------------------------------------------------
#
# Target grammar ("existential NNF"): And/Or trees over
#   Compare (op possibly negated), Member, Not(Member),
#   TupleEq, Not(TupleEq), Exists(var, nnf), Not(Exists(var, nnf)).
# Universal quantifiers are rewritten through ¬∃¬.


def nnf(formula: C.Formula, positive: bool = True) -> C.Formula:
    """Normalize ``formula`` (or its negation, when positive=False)."""
    if isinstance(formula, C.Forall):
        if positive:
            return C.Not(C.Exists(formula.var, nnf(formula.body, False)))
        return C.Exists(formula.var, nnf(formula.body, False))
    if isinstance(formula, C.Exists):
        if positive:
            return C.Exists(formula.var, nnf(formula.body, True))
        return C.Not(C.Exists(formula.var, nnf(formula.body, True)))
    if isinstance(formula, C.Not):
        return nnf(formula.operand, not positive)
    if isinstance(formula, C.And):
        if positive:
            return C.And(nnf(formula.left, True), nnf(formula.right, True))
        return C.Or(nnf(formula.left, False), nnf(formula.right, False))
    if isinstance(formula, C.Or):
        if positive:
            return C.Or(nnf(formula.left, True), nnf(formula.right, True))
        return C.And(nnf(formula.left, False), nnf(formula.right, False))
    if isinstance(formula, C.Implies):
        if positive:
            return C.Or(nnf(formula.left, False), nnf(formula.right, True))
        return C.And(nnf(formula.left, True), nnf(formula.right, False))
    if isinstance(formula, C.Compare):
        if positive:
            return formula
        from repro.algebra.predicates import COMPARISON_NEGATIONS

        return C.Compare(COMPARISON_NEGATIONS[formula.op], formula.left, formula.right)
    if isinstance(formula, (C.Member, C.TupleEq)):
        return formula if positive else C.Not(formula)
    raise TranslationError(f"unknown formula node {formula!r}")


def _flatten_and(formula: C.Formula) -> List[C.Formula]:
    if isinstance(formula, C.And):
        return _flatten_and(formula.left) + _flatten_and(formula.right)
    return [formula]


def _conjoin_formulas(parts: List[C.Formula]) -> C.Formula:
    result = parts[0]
    for part in parts[1:]:
        result = C.And(result, part)
    return result


def miniscope(formula: C.Formula) -> C.Formula:
    """Pull conjuncts that do not mention the bound variable out of
    positive existentials: ``∃y(A ∧ B(y))  ⇒  A ∧ ∃y(B(y))``.

    Standard miniscoping; applied to the NNF violation formula it exposes
    the membership anchors that :func:`calc_to_alg` needs (e.g. for the
    Table 1 row-4 family, where ``x in R`` starts out buried inside the
    existential over ``y``), and it narrows nested existentials so their
    linking predicates mention only adjacent variables.
    """
    if isinstance(formula, C.Exists):
        body = miniscope(formula.body)
        if isinstance(body, C.Or):
            return C.Exists(formula.var, body)
        conjuncts = _flatten_and(body)
        kept = [part for part in conjuncts if formula.var in free_variables(part)]
        pulled = [part for part in conjuncts if formula.var not in free_variables(part)]
        if not pulled or not kept:
            return C.Exists(formula.var, body)
        return _conjoin_formulas(pulled + [C.Exists(formula.var, _conjoin_formulas(kept))])
    if isinstance(formula, C.Not):
        operand = formula.operand
        if isinstance(operand, C.Exists) and not isinstance(operand.body, C.Or):
            # Pulling a conjunct out of a *negated* existential would turn
            # ¬∃y(A ∧ B(y)) into ¬(A ∧ ∃y B(y)) — no longer the antijoin
            # shape.  Miniscope each conjunct in place instead.
            parts = [miniscope(part) for part in _flatten_and(operand.body)]
            return C.Not(C.Exists(operand.var, _conjoin_formulas(parts)))
        return C.Not(miniscope(operand))
    if isinstance(formula, C.And):
        return C.And(miniscope(formula.left), miniscope(formula.right))
    if isinstance(formula, C.Or):
        return C.Or(miniscope(formula.left), miniscope(formula.right))
    if isinstance(formula, C.Forall):  # pragma: no cover - NNF has no foralls
        return C.Forall(formula.var, miniscope(formula.body))
    return formula


# ---------------------------------------------------------------------------
# Static schema inference (for tuple-equality expansion and arity checks)
# ---------------------------------------------------------------------------


def static_schema(expr: E.Expression, db: DatabaseSchema) -> RelationSchema:
    """Infer the output schema of an expression the translator built."""
    if isinstance(expr, E.RelationRef):
        return db.relation(naming.base_of(expr.name))
    if isinstance(expr, E.Delta):
        return db.relation(expr.relation)
    if isinstance(expr, (E.Select, E.SemiJoin, E.AntiJoin)):
        return static_schema(expr.input if isinstance(expr, E.Select) else expr.left, db)
    if isinstance(expr, (E.Union, E.Difference, E.Intersection)):
        return static_schema(expr.left, db)
    if isinstance(expr, (E.Join, E.Product)):
        left = static_schema(expr.left, db)
        right = static_schema(expr.right, db)
        return RelationSchema(
            f"{left.name}_x",
            [
                type(attribute)(f"a{i}", attribute.domain, attribute.nullable)
                for i, attribute in enumerate(
                    list(left.attributes) + list(right.attributes), start=1
                )
            ],
        )
    if isinstance(expr, (E.Aggregate, E.Count, E.Multiplicity)):
        from repro.engine.schema import Attribute
        from repro.engine.types import ANY

        return RelationSchema("aggregate", [Attribute("value", ANY, nullable=True)])
    raise TranslationError(f"cannot infer schema of {expr!r}")


# ---------------------------------------------------------------------------
# Term and atom mapping
# ---------------------------------------------------------------------------


class _AggregateTerm(Exception):
    """Internal: raised when a term contains an aggregate application."""


def _map_term(term: C.Term, sides: Dict[str, Optional[str]]) -> P.ScalarExpr:
    if isinstance(term, C.Const):
        return P.Const(term.value)
    if isinstance(term, C.AttrSel):
        if term.var not in sides:
            raise TranslationError(
                f"variable {term.var!r} not in scope for predicate mapping"
            )
        return P.ColRef(term.attr, sides[term.var])
    if isinstance(term, C.ArithTerm):
        return P.Arith(
            term.op, _map_term(term.left, sides), _map_term(term.right, sides)
        )
    if isinstance(term, (C.AggTerm, C.CntTerm, C.MltTerm)):
        raise _AggregateTerm()
    raise TranslationError(f"unknown term node {term!r}")


def _aggregate_expr(term: C.Term) -> E.Expression:
    """The single-row relation computing an aggregate/counting term."""
    if isinstance(term, C.AggTerm):
        return E.Aggregate(E.RelationRef(term.relation), term.func, term.attr)
    if isinstance(term, C.CntTerm):
        return E.Count(E.RelationRef(term.relation))
    if isinstance(term, C.MltTerm):
        return E.Multiplicity(E.RelationRef(term.relation))
    raise TranslationError(f"{term!r} is not an aggregate term")


def _is_aggregate_term(term: C.Term) -> bool:
    return isinstance(term, (C.AggTerm, C.CntTerm, C.MltTerm))


def _tuple_eq_predicate(arity: int) -> P.Predicate:
    """Whole-tuple equality as attribute-wise conjunction."""
    comparisons = [
        P.Comparison("=", P.ColRef(position, "left"), P.ColRef(position, "right"))
        for position in range(1, arity + 1)
    ]
    return P.conjoin(*comparisons)


def _atom_predicate(
    atom: C.Formula,
    sides: Dict[str, Optional[str]],
    arities: Dict[str, int],
) -> P.Predicate:
    """Map an (optionally negated) atom to an algebra predicate."""
    if isinstance(atom, C.Not):
        return P.negate(_atom_predicate(atom.operand, sides, arities))
    if isinstance(atom, C.Compare):
        return P.Comparison(
            atom.op, _map_term(atom.left, sides), _map_term(atom.right, sides)
        )
    if isinstance(atom, C.TupleEq):
        left_arity = arities.get(atom.left)
        right_arity = arities.get(atom.right)
        if left_arity is None or right_arity is None or left_arity != right_arity:
            raise TranslationError(
                f"tuple equality {atom.left} = {atom.right} over relations of "
                f"unknown or different arity"
            )
        comparisons = [
            P.Comparison(
                "=",
                P.ColRef(position, sides[atom.left]),
                P.ColRef(position, sides[atom.right]),
            )
            for position in range(1, left_arity + 1)
        ]
        return P.conjoin(*comparisons)
    raise TranslationError(f"{atom!r} cannot be used as a predicate atom")


def _try_local_predicate(
    formula: C.Formula,
    sides: Dict[str, Optional[str]],
    arities: Dict[str, int],
) -> Optional[P.Predicate]:
    """Convert a quantifier- and membership-free formula to a predicate.

    Returns None when the formula contains quantifiers, membership atoms, or
    aggregate terms (those need relational treatment, not a predicate).
    """
    if isinstance(formula, (C.Exists, C.Forall, C.Member)):
        return None
    if isinstance(formula, C.Not):
        inner = _try_local_predicate(formula.operand, sides, arities)
        return None if inner is None else P.negate(inner)
    if isinstance(formula, (C.And, C.Or)):
        left = _try_local_predicate(formula.left, sides, arities)
        right = _try_local_predicate(formula.right, sides, arities)
        if left is None or right is None:
            return None
        ctor = P.And if isinstance(formula, C.And) else P.Or
        return ctor(left, right)
    if isinstance(formula, C.Implies):
        return _try_local_predicate(
            C.Or(C.Not(formula.left), formula.right), sides, arities
        )
    try:
        return _atom_predicate(formula, sides, arities)
    except _AggregateTerm:
        return None


# ---------------------------------------------------------------------------
# CalcToAlg: {var | formula} for the guarded fragment
# ---------------------------------------------------------------------------


def _needs_relational_split(formula: C.Formula) -> bool:
    """True when a disjunct cannot live inside a tuple predicate — it
    contains membership atoms, quantifiers, tuple equalities, or aggregate
    terms — so a disjunction containing it must be distributed into a union
    of set bodies rather than compiled to a ``P.Or``."""
    if isinstance(formula, (C.Member, C.TupleEq, C.Exists, C.Forall)):
        return True
    if isinstance(formula, C.Not):
        return _needs_relational_split(formula.operand)
    if isinstance(formula, (C.And, C.Or, C.Implies)):
        return _needs_relational_split(formula.left) or _needs_relational_split(
            formula.right
        )
    if isinstance(formula, C.Compare):
        return any(
            _term_has_aggregate(term) for term in (formula.left, formula.right)
        )
    return False


def _term_has_aggregate(term: C.Term) -> bool:
    if _is_aggregate_term(term):
        return True
    if isinstance(term, C.ArithTerm):
        return _term_has_aggregate(term.left) or _term_has_aggregate(term.right)
    return False


def _branch_well_typed(branch: C.Formula, db: DatabaseSchema) -> bool:
    """Every attribute selection resolves against every relation its
    variable is anchored on within ``branch``."""
    from repro.calculus.analysis import variable_ranges

    ranges = variable_ranges(branch)
    schemas = {
        variable: [db.relation(naming.base_of(rel)) for rel in sorted(rels)]
        for variable, rels in ranges.items()
    }
    for term in C.iter_terms(branch):
        if isinstance(term, C.AttrSel):
            for schema in schemas.get(term.var, []):
                try:
                    schema.position_of(term.attr)
                except Exception:
                    return False
    return True


def calc_to_alg(var: str, formula: C.Formula, db: DatabaseSchema) -> E.Expression:
    """Translate the set comprehension ``{var | formula}`` to algebra.

    ``formula`` must already be in existential NNF (see :func:`nnf`).
    """
    formula = miniscope(formula)
    if isinstance(formula, C.Or):
        return E.Union(
            calc_to_alg(var, formula.left, db),
            calc_to_alg(var, formula.right, db),
        )
    conjuncts = _flatten_and(formula)

    # Distribute relational disjunctions:
    # {var | rest ∧ (A ∨ B)} = {var | rest ∧ A} ∪ {var | rest ∧ B} whenever
    # A/B carry memberships or quantifiers and therefore cannot become a
    # tuple predicate.  (Multiplicities of rows satisfying both branches
    # inflate in bag mode; translated checks only test emptiness.)
    for position, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, C.Or) and _needs_relational_split(conjunct):
            rest = conjuncts[:position] + conjuncts[position + 1 :]
            branches = [
                _conjoin_formulas(rest + [conjunct.left]),
                _conjoin_formulas(rest + [conjunct.right]),
            ]
            for branch in branches:
                if not _branch_well_typed(branch, db):
                    # A branch may re-anchor the variable on a relation its
                    # attribute references do not resolve against; only the
                    # fallback's per-relation typing can evaluate that.
                    raise TranslationError(
                        "disjunctive branch is not well-typed against its "
                        "own anchors"
                    )
            left = calc_to_alg(var, branches[0], db)
            right = calc_to_alg(var, branches[1], db)
            if (
                static_schema(left, db).arity
                != static_schema(right, db).arity
            ):
                # Anchors of different arity per branch: the union would be
                # ill-typed; per-branch typing needs the fallback.
                raise TranslationError(
                    "disjunctive branches translate to different arities"
                )
            return E.Union(left, right)

    anchors = [
        conjunct
        for conjunct in conjuncts
        if isinstance(conjunct, C.Member) and conjunct.var == var
    ]
    if not anchors:
        raise TranslationError(
            f"set body for {var!r} has no membership anchor "
            f"'{var} in R' in guarded position"
        )
    base_name = anchors[0].relation
    current: E.Expression = E.RelationRef(base_name)
    base_schema = db.relation(naming.base_of(base_name))
    var_arity = base_schema.arity

    local_predicates: List[P.Predicate] = []

    for conjunct in conjuncts:
        if conjunct is anchors[0]:
            continue
        if isinstance(conjunct, C.Member) and conjunct.var == var:
            other_schema = db.relation(naming.base_of(conjunct.relation))
            if other_schema.arity != var_arity:
                raise TranslationError(
                    f"intersecting memberships of {var!r} over relations of "
                    f"different arity"
                )
            current = E.Intersection(current, E.RelationRef(conjunct.relation))
            continue
        if (
            isinstance(conjunct, C.Not)
            and isinstance(conjunct.operand, C.Member)
            and conjunct.operand.var == var
        ):
            current = E.Difference(current, E.RelationRef(conjunct.operand.relation))
            continue
        if isinstance(conjunct, C.Exists):
            current = _apply_exists(
                current, var, var_arity, conjunct, db, positive=True
            )
            continue
        if isinstance(conjunct, C.Not) and isinstance(conjunct.operand, C.Exists):
            current = _apply_exists(
                current, var, var_arity, conjunct.operand, db, positive=False
            )
            continue
        # Remaining: (negated) atoms local to var, possibly with aggregates,
        # or fully variable-free ("global") conditions.
        handled = _try_atom_with_aggregates(current, var, conjunct, db)
        if handled is not None:
            current = handled
            continue
        predicate = _try_local_predicate(
            conjunct, {var: None}, {var: var_arity}
        )
        if predicate is None:
            raise TranslationError(
                f"conjunct {conjunct!r} is outside the translatable fragment"
            )
        local_predicates.append(predicate)

    if local_predicates:
        current = E.Select(current, P.conjoin(*local_predicates))
    return current


def _try_atom_with_aggregates(
    current: E.Expression, var: str, conjunct: C.Formula, db: DatabaseSchema
) -> Optional[E.Expression]:
    """Handle comparisons involving aggregate terms, and variable-free
    conjuncts, by semijoining against single-row aggregate relations."""
    atom = conjunct.operand if isinstance(conjunct, C.Not) else conjunct
    negated = isinstance(conjunct, C.Not)
    if not isinstance(atom, C.Compare):
        return None
    has_aggregate = any(
        _is_aggregate_term(term)
        for term in (atom.left, atom.right)
    )
    free = free_variables(atom)
    if not has_aggregate and free:
        return None  # plain local atom: handled by predicate path
    if free - {var}:
        raise TranslationError(
            f"atom {atom!r} references out-of-scope variables {free - {var}}"
        )
    op = atom.op
    if negated:
        from repro.algebra.predicates import COMPARISON_NEGATIONS

        op = COMPARISON_NEGATIONS[op]
    left, right = atom.left, atom.right
    if _is_aggregate_term(right) and not _is_aggregate_term(left):
        agg_expr = _aggregate_expr(right)
        left_scalar = _map_term(left, {var: "left"})
        predicate = P.Comparison(op, left_scalar, P.ColRef(1, "right"))
        return E.SemiJoin(current, agg_expr, predicate)
    if _is_aggregate_term(left) and not _is_aggregate_term(right):
        # The aggregate lands on the semijoin's right side, so the
        # comparison keeps its operand order via the right-side ColRef.
        agg_expr = _aggregate_expr(left)
        right_scalar = _map_term(right, {var: "left"})
        predicate = P.Comparison(op, P.ColRef(1, "right"), right_scalar)
        return E.SemiJoin(current, agg_expr, predicate)
    if _is_aggregate_term(left) and _is_aggregate_term(right):
        combined = E.Product(_aggregate_expr(left), _aggregate_expr(right))
        predicate = P.Comparison(op, P.ColRef(1), P.ColRef(2))
        return E.SemiJoin(current, E.Select(combined, predicate), P.TRUE)
    if not free and not has_aggregate:
        # Constant-only comparison: keep or drop everything.
        sides: Dict[str, Optional[str]] = {}
        predicate = P.Comparison(
            op, _map_term(left, sides), _map_term(right, sides)
        )
        return E.Select(current, predicate)
    return None


def _apply_exists(
    current: E.Expression,
    var: str,
    var_arity: int,
    exists: C.Exists,
    db: DatabaseSchema,
    positive: bool,
) -> E.Expression:
    """Translate a (negated) existential conjunct as a semi/antijoin."""
    inner_var = exists.var
    if isinstance(exists.body, C.Or):
        free = free_variables(exists.body)
        if free - {inner_var}:
            # Disjunctive body referencing outer variables: distribute the
            # existential over the disjunction.  Positive:
            # {x ∈ cur | ∃y(A ∨ B)} = (cur where ∃yA) ∪ (cur where ∃yB);
            # negative: ¬∃y(A ∨ B) = ¬∃yA ∧ ¬∃yB applies both sequentially.
            left = C.Exists(inner_var, exists.body.left)
            right = C.Exists(inner_var, exists.body.right)
            if positive:
                return E.Union(
                    _apply_exists(current, var, var_arity, left, db, True),
                    _apply_exists(current, var, var_arity, right, db, True),
                )
            narrowed = _apply_exists(current, var, var_arity, left, db, False)
            return _apply_exists(narrowed, var, var_arity, right, db, False)
        witness = calc_to_alg(inner_var, exists.body, db)
        ctor = E.SemiJoin if positive else E.AntiJoin
        return ctor(current, witness, P.TRUE)

    inner_conjuncts = _flatten_and(exists.body)
    # A relational disjunction among the body's conjuncts (e.g. a linking
    # disjunct mixing a membership with a comparison) cannot become a join
    # predicate; distribute it and retry as a disjunctive body.
    for position, part in enumerate(inner_conjuncts):
        if isinstance(part, C.Or) and _needs_relational_split(part):
            rest = inner_conjuncts[:position] + inner_conjuncts[position + 1 :]
            split = C.Exists(
                inner_var,
                C.Or(
                    _conjoin_formulas(rest + [part.left]),
                    _conjoin_formulas(rest + [part.right]),
                ),
            )
            return _apply_exists(current, var, var_arity, split, db, positive)
    inner_only: List[C.Formula] = []
    linking: List[C.Formula] = []
    for part in inner_conjuncts:
        free = free_variables(part)
        if var in free:
            if positive:
                # Miniscoping already hoisted var-only conjuncts, so this
                # one genuinely links the two variables.
                linking.append(part)
            elif inner_var in free:
                linking.append(part)
            else:
                # ¬∃y(α(x) ∧ β(y)) is ¬α(x) ∨ ¬∃y β(y): not conjunctive.
                raise TranslationError(
                    f"outer-variable conjunct under a negated existential: "
                    f"{part!r}"
                )
        else:
            inner_only.append(part)
    if not inner_only:
        raise TranslationError(
            f"existential variable {inner_var!r} has no local conjuncts "
            f"(missing membership anchor)"
        )
    witness = calc_to_alg(inner_var, _conjoin_formulas(inner_only), db)
    witness_arity = static_schema(witness, db).arity

    if linking:
        sides = {var: "left", inner_var: "right"}
        arities = {var: var_arity, inner_var: witness_arity}
        predicates = []
        for part in linking:
            predicate = _try_local_predicate(part, sides, arities)
            if predicate is None:
                raise TranslationError(
                    f"linking conjunct {part!r} is not a predicate over "
                    f"{var!r} and {inner_var!r}"
                )
            predicates.append(predicate)
        predicate = P.conjoin(*predicates)
    else:
        predicate = P.TRUE
    ctor = E.SemiJoin if positive else E.AntiJoin
    return ctor(current, witness, predicate)


# ---------------------------------------------------------------------------
# TransC (Alg 5.6) and TransR (Alg 5.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CheckConstraint(Statement):
    """Fallback statement: evaluate a CL constraint directly in-transaction.

    Used only when a condition falls outside the *monolithic* translatable
    fragment (the paper's translation algorithm is also partial: "a complete
    translation algorithm is not presented here").  Aborts like ``alarm`` on
    violation.

    Execution is not necessarily naive, though: under the planned engine the
    formula is handed to :mod:`repro.calculus.planned`, which decomposes the
    boolean structure and runs every translatable subformula through its
    compiled physical plan — the model checker evaluates only the genuinely
    untranslatable residue.  ``naive_residue`` records (at translation time)
    whether such residue exists; transaction modification surfaces it in
    :class:`~repro.core.modification.ModificationStats`.
    """

    formula: C.Formula
    message: Optional[str] = None
    naive_residue: bool = True

    def execute(self, context) -> None:
        from repro.errors import TransactionAborted

        if not self.holds(context):
            raise TransactionAborted(self.message or "constraint check failed")

    def holds(self, context) -> bool:
        """Evaluate the formula with the fastest applicable backend."""
        from repro.algebra.planner import resolve_engine

        schema = getattr(getattr(context, "database", None), "schema", None)
        if schema is not None and resolve_engine(context) == "planned":
            from repro.calculus.planned import evaluate_constraint_planned

            return evaluate_constraint_planned(self.formula, context, schema)
        return evaluate_constraint(self.formula, context, validate=False)

    def relations_read(self) -> set:
        from repro.calculus.analysis import relation_names

        return relation_names(self.formula)


def trans_c(
    condition: C.Formula,
    db: DatabaseSchema,
    name: Optional[str] = None,
    allow_fallback: bool = True,
) -> Program:
    """Alg 5.6: translate a condition into an aborting algebra program."""
    try:
        statement = _trans_c_statement(condition, db, name)
    except TranslationError:
        if not allow_fallback:
            raise
        from repro.calculus.planned import compile_constraint

        compiled = compile_constraint(condition, db)
        statement = CheckConstraint(
            condition, message=name, naive_residue=not compiled.fully_planned
        )
    return Program([statement])


def _trans_c_statement(
    condition: C.Formula, db: DatabaseSchema, name: Optional[str]
) -> Statement:
    if isinstance(condition, C.Forall):
        violations = calc_to_alg(condition.var, nnf(condition, False).body, db)
        return Alarm(violations, message=name)
    if isinstance(condition, C.Exists):
        witnesses = calc_to_alg(condition.var, nnf(condition, True).body, db)
        guard = E.Select(
            E.Count(witnesses), P.Comparison("=", P.ColRef(1), P.Const(0))
        )
        return Alarm(guard, message=name)
    # Quantifier-free (aggregate) constraints: Table 1 rows 6-7 generalized.
    negated = nnf(condition, False)
    violation_expr = _aggregate_condition_expr(negated, db)
    return Alarm(violation_expr, message=name)


def _aggregate_condition_expr(
    negated: C.Formula, db: DatabaseSchema
) -> E.Expression:
    """Violation expression for a quantifier-free aggregate condition.

    Collect the distinct aggregate terms, build the product of their
    single-row relations, and select the rows (the single combined row)
    satisfying the *negated* condition.
    """
    terms: List[C.Term] = []

    def collect(node: C.Formula) -> None:
        if isinstance(node, C.Compare):
            for term in (node.left, node.right):
                _collect_agg_terms(term, terms)
        elif isinstance(node, C.Not):
            collect(node.operand)
        elif isinstance(node, (C.And, C.Or, C.Implies)):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, (C.Member, C.TupleEq, C.Exists, C.Forall)):
            raise TranslationError(
                "quantifier-free translation applies to aggregate conditions "
                "only"
            )

    collect(negated)
    if not terms:
        raise TranslationError("condition mentions no relations")
    positions = {term: position for position, term in enumerate(terms, start=1)}
    combined: E.Expression = _aggregate_expr(terms[0])
    for term in terms[1:]:
        combined = E.Product(combined, _aggregate_expr(term))
    predicate = _aggregate_formula_predicate(negated, positions)
    return E.Select(combined, predicate)


def _collect_agg_terms(term: C.Term, accumulator: List[C.Term]) -> None:
    if _is_aggregate_term(term):
        if term not in accumulator:
            accumulator.append(term)
    elif isinstance(term, C.ArithTerm):
        _collect_agg_terms(term.left, accumulator)
        _collect_agg_terms(term.right, accumulator)
    elif isinstance(term, C.AttrSel):
        raise TranslationError(
            "free tuple variable in quantifier-free condition"
        )


def _aggregate_formula_predicate(
    node: C.Formula, positions: Dict[C.Term, int]
) -> P.Predicate:
    if isinstance(node, C.Compare):
        return P.Comparison(
            node.op,
            _aggregate_term_scalar(node.left, positions),
            _aggregate_term_scalar(node.right, positions),
        )
    if isinstance(node, C.Not):
        return P.negate(_aggregate_formula_predicate(node.operand, positions))
    if isinstance(node, C.And):
        return P.And(
            _aggregate_formula_predicate(node.left, positions),
            _aggregate_formula_predicate(node.right, positions),
        )
    if isinstance(node, C.Or):
        return P.Or(
            _aggregate_formula_predicate(node.left, positions),
            _aggregate_formula_predicate(node.right, positions),
        )
    if isinstance(node, C.Implies):
        return P.Or(
            P.negate(_aggregate_formula_predicate(node.left, positions)),
            _aggregate_formula_predicate(node.right, positions),
        )
    raise TranslationError(f"unexpected node in aggregate condition: {node!r}")


def _aggregate_term_scalar(
    term: C.Term, positions: Dict[C.Term, int]
) -> P.ScalarExpr:
    if _is_aggregate_term(term):
        return P.ColRef(positions[term], None)
    if isinstance(term, C.Const):
        return P.Const(term.value)
    if isinstance(term, C.ArithTerm):
        return P.Arith(
            term.op,
            _aggregate_term_scalar(term.left, positions),
            _aggregate_term_scalar(term.right, positions),
        )
    raise TranslationError(f"unexpected term in aggregate condition: {term!r}")


def trans_r(rule, db: DatabaseSchema, allow_fallback: bool = True) -> Program:
    """Alg 5.5: translate an integrity rule into an algebra program.

    Aborting rules: translate the condition (``alarm`` form).  Compensating
    rules: the violation response action itself (``TransCA``), preserving a
    non-triggering flag.
    """
    if rule.is_aborting:
        return trans_c(rule.condition, db, name=rule.name, allow_fallback=allow_fallback)
    return rule.action_program()


# ---------------------------------------------------------------------------
# Table 1 verbatim forms (for the regeneration benchmark and tests)
# ---------------------------------------------------------------------------


def table1_form(condition: C.Formula, db: DatabaseSchema) -> Optional[Statement]:
    """Return the *verbatim* Table 1 translation when the condition matches
    one of the seven construct families, else None.

    The only family where this differs from :func:`trans_c` is row 4 (the
    two-variable universal), where the paper shows the θ-join form
    ``alarm(σ_{¬c2'}(R ⋈_{c1'} S))`` while the general translator produces
    the equivalent semijoin form.
    """
    row4 = _match_row4(condition, db)
    if row4 is not None:
        return row4
    try:
        return _trans_c_statement(condition, db, None)
    except TranslationError:
        return None


def _match_row4(condition: C.Formula, db: DatabaseSchema) -> Optional[Statement]:
    """(forall x, y)((x in R and y in S and c1(x,y)) => c2(x,y))."""
    if not isinstance(condition, C.Forall):
        return None
    outer = condition
    if not isinstance(outer.body, C.Forall):
        return None
    inner = outer.body
    if not isinstance(inner.body, C.Implies):
        return None
    antecedent = _flatten_and(inner.body.left)
    consequent = inner.body.right
    members = [part for part in antecedent if isinstance(part, C.Member)]
    rest = [part for part in antecedent if not isinstance(part, C.Member)]
    member_vars = {member.var for member in members}
    if member_vars != {outer.var, inner.var} or len(members) != 2:
        return None
    by_var = {member.var: member.relation for member in members}
    left_rel, right_rel = by_var[outer.var], by_var[inner.var]
    sides = {outer.var: "left", inner.var: "right"}
    arities = {
        outer.var: db.relation(naming.base_of(left_rel)).arity,
        inner.var: db.relation(naming.base_of(right_rel)).arity,
    }
    try:
        join_parts = [_atom_predicate(part, sides, arities) for part in rest]
        join_pred = P.conjoin(*join_parts) if join_parts else P.TRUE
        consequent_pred = _try_local_predicate(consequent, sides, arities)
    except (TranslationError, _AggregateTerm):
        return None
    if consequent_pred is None:
        return None
    joined = E.Join(E.RelationRef(left_rel), E.RelationRef(right_rel), join_pred)
    return Alarm(E.Select(joined, P.negate(consequent_pred)))
