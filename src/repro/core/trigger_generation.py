"""Automatic trigger-set generation from rule conditions (paper Alg 5.7).

The trigger set of an integrity rule can always be deduced from the syntax
of its CL condition.  The algorithm walks the formula tracking *polarity*
(``GenTrigW`` for positive context, ``GenTrigN`` for negated context) and
the sets of universally (``V_u``) and existentially (``V_e``) quantified
variables — with the sets swapping roles when polarity flips:

* a membership atom ``x in R`` in *negated* context (e.g. the antecedent of
  a universal's guard) can be violated by **insertions** into R — a new
  tuple becomes subject to the condition;
* a membership atom in *positive* context (e.g. the witness of an
  existential, or the consequent of an inclusion dependency) can be
  violated by **deletions** from R — a required tuple may disappear;
* any aggregate or counting term over R can be perturbed by both ``INS(R)``
  and ``DEL(R)``.

A note on fidelity: the paper's ``GenTrigA`` expresses the membership rule
via the variable sets ``V_u``/``V_e``; the archival scan garbles exactly
which set maps to INS and which to DEL.  The two readings coincide on all
guarded constraints (including both of the paper's published trigger sets),
but differ on inclusion dependencies ``(forall x)(x in r => x in s)``,
where only the *polarity* reading produces the sound set
``{INS(r), DEL(s)}`` — the V-set reading would emit ``INS(s)``, missing
that deleting from ``s`` can violate the constraint.  We therefore
implement the polarity reading (and still track the variable sets, which
the algorithm's quantifier cases maintain exactly as printed).

Worked example (the paper's referential rule R2): for
``(forall x)(x in beer => (exists y)(y in brewery and x.brewery = y.name))``
the generator yields ``{INS(beer), DEL(brewery)}`` — exactly the trigger set
the paper writes in Example 4.2.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.calculus import ast as C
from repro.core.triggers import DEL, INS, TriggerSet


def generate_triggers(condition: C.Formula) -> TriggerSet:
    """GenTrigC (Alg 5.7): the trigger set of a rule condition."""
    return _gen_w(condition, frozenset(), frozenset())


def _gen_w(node: C.Formula, v_u: FrozenSet[str], v_e: FrozenSet[str]) -> TriggerSet:
    """GenTrigW: positive-context walk."""
    if isinstance(node, C.Forall):
        return _gen_w(node.body, v_u | {node.var}, v_e - {node.var})
    if isinstance(node, C.Exists):
        return _gen_w(node.body, v_u - {node.var}, v_e | {node.var})
    if isinstance(node, (C.And, C.Or)):
        return _gen_w(node.left, v_u, v_e) | _gen_w(node.right, v_u, v_e)
    if isinstance(node, C.Implies):
        return _gen_n(node.left, v_u, v_e) | _gen_w(node.right, v_u, v_e)
    if isinstance(node, C.Not):
        return _gen_n(node.operand, v_u, v_e)
    return _gen_a(node, positive=True)


def _gen_n(node: C.Formula, v_u: FrozenSet[str], v_e: FrozenSet[str]) -> TriggerSet:
    """GenTrigN: negated-context walk (quantifier roles swap)."""
    if isinstance(node, C.Forall):
        return _gen_n(node.body, v_u - {node.var}, v_e | {node.var})
    if isinstance(node, C.Exists):
        return _gen_n(node.body, v_u | {node.var}, v_e - {node.var})
    if isinstance(node, (C.And, C.Or)):
        return _gen_n(node.left, v_u, v_e) | _gen_n(node.right, v_u, v_e)
    if isinstance(node, C.Implies):
        return _gen_w(node.left, v_u, v_e) | _gen_n(node.right, v_u, v_e)
    if isinstance(node, C.Not):
        return _gen_w(node.operand, v_u, v_e)
    return _gen_a(node, positive=False)


def _gen_a(node: C.Formula, positive: bool) -> TriggerSet:
    """GenTrigA: atomic formulas (polarity reading, see module docs).

    A membership atom that must *hold* (positive context) is endangered by
    deletions; one that appears under negation is endangered by insertions.
    """
    if isinstance(node, C.Compare):
        return _gen_t(node.left) | _gen_t(node.right)
    if isinstance(node, C.Member):
        kind = DEL if positive else INS
        return frozenset({(kind, node.relation)})
    # Tuple equality carries no relation information of its own.
    return frozenset()


def _gen_t(term: C.Term) -> TriggerSet:
    """GenTrigT: terms — aggregates and counters react to both update types.

    The paper's definition covers top-level aggregate applications; we
    recurse through arithmetic so ``SUM(R, 1) + CNT(S) <= 100`` also yields
    triggers for both relations.
    """
    if isinstance(term, C.AggTerm):
        return frozenset({(INS, term.relation), (DEL, term.relation)})
    if isinstance(term, (C.CntTerm, C.MltTerm)):
        return frozenset({(INS, term.relation), (DEL, term.relation)})
    if isinstance(term, C.ArithTerm):
        return _gen_t(term.left) | _gen_t(term.right)
    return frozenset()
