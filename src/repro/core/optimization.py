"""Rule optimization: OptR / OptC (paper Alg 5.4) and differential tests.

Alg 5.4 restricts rule optimization to the *condition*:
``OptR(J) = (triggers(J), OptC(condition(J)), action(J))``.  The paper
leaves OptC's internals open, listing the applicable technique families:

* syntactic manipulation of constraint specifications (Nicolas [14];
  Hsu & Imielinski [11]) — here :func:`opt_c`, a simplification pass;
* differential relations to avoid unnecessary data access (Simon &
  Valduriez [18]; Bernstein et al. [5]; Grefen & Apers [7]) — here
  :func:`differential_programs`, which specializes a *translated* rule
  program per elementary update type so that enforcement touches only the
  tuples the transaction actually changed (``R@plus`` / ``R@minus``);
* semantic manipulation (Qian & Wiederhold [16]) — out of scope, as in the
  paper.

The differential specialization used to be a hand-written pattern table
over eight alarm shapes; it is now one call into the *general* delta-rewrite
transform of :mod:`repro.algebra.delta`, which incrementalizes any
translated check built from selections, projections, joins, semi/antijoins
and set operators — with vacuity ("deleting referers is safe", "adding
targets is safe", triggers on unmentioned relations) falling out of the
transform's emptiness propagation instead of being enumerated.  All of it is
sound under the paper's Def 3.5 assumption that the pre-transaction state is
correct, which is precisely the premise of ``differential=True``.

A vacuous trigger yields an *empty* program: the store simply has nothing to
append for that update type, which is itself a measurable saving (bench E6).

Beyond the single-``alarm`` programs ``trans_c`` produces, translation
*fallbacks* (:class:`~repro.core.translation.CheckConstraint`) are
specialized too whenever their compiled form decomposes into a pure
conjunction of planned subformulas: pre-state correctness distributes over
``∧`` (every conjunct held before the transaction), so each conjunct's alarm
expression incrementalizes independently.  It does **not** distribute over
``∨`` — a disjunctive constraint may have held via a branch the transaction
just falsified — so disjunctive decompositions conservatively keep the full
check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algebra import expressions as E
from repro.algebra.delta import NotIncrementalizable, delta_expression
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm
from repro.calculus import ast as C


# ---------------------------------------------------------------------------
# OptC: syntactic condition simplification
# ---------------------------------------------------------------------------


def opt_c(condition: C.Formula) -> C.Formula:
    """Simplify a CL condition, preserving semantics.

    Rewrites: double negation, De-Morgan-directed constant elimination,
    ``a => false`` to ``not a``, ``true => a`` to ``a``, and recursive
    descent through quantifiers.
    """
    if isinstance(condition, C.Not):
        inner = opt_c(condition.operand)
        if isinstance(inner, C.Not):
            return inner.operand
        if isinstance(inner, C.Const):
            pass
        return C.Not(inner)
    if isinstance(condition, C.And):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, True):
            return right
        if _is_const(right, True):
            return left
        return C.And(left, right)
    if isinstance(condition, C.Or):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, False):
            return right
        if _is_const(right, False):
            return left
        return C.Or(left, right)
    if isinstance(condition, C.Implies):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, True):
            return right
        if _is_const(right, False):
            return C.Not(left)
        return C.Implies(left, right)
    if isinstance(condition, C.Forall):
        return C.Forall(condition.var, opt_c(condition.body))
    if isinstance(condition, C.Exists):
        return C.Exists(condition.var, opt_c(condition.body))
    if isinstance(condition, C.Compare):
        folded = _fold_comparison(condition)
        return folded if folded is not None else condition
    return condition


def _is_const(node: C.Formula, value: bool) -> bool:
    return (
        isinstance(node, C.Compare)
        and isinstance(node.left, C.Const)
        and isinstance(node.right, C.Const)
        and _compare_consts(node) is value
    )


def _fold_comparison(node: C.Compare) -> Optional[C.Formula]:
    if isinstance(node.left, C.Const) and isinstance(node.right, C.Const):
        return node  # kept as-is; _is_const reads its truth value
    return None


def _compare_consts(node: C.Compare) -> Optional[bool]:
    left, right = node.left.value, node.right.value
    try:
        return {
            "<": left < right,
            "<=": left <= right,
            "=": left == right,
            "!=": left != right,
            ">=": left >= right,
            ">": left > right,
        }[node.op]
    except TypeError:
        return None


def opt_r(rule):
    """Alg 5.4: optimize a rule's condition, keep triggers and action.

    Returns a new :class:`~repro.core.rules.IntegrityRule`.
    """
    from repro.core.rules import IntegrityRule

    return IntegrityRule(
        opt_c(rule.condition),
        action=rule.action,
        triggers=rule.triggers,
        name=rule.name,
    )


# ---------------------------------------------------------------------------
# Differential specialization of translated programs
# ---------------------------------------------------------------------------


def differential_programs(
    rule, translated: Program, db=None
) -> Optional[Dict[tuple, Program]]:
    """Per-trigger differential variants of a translated aborting program.

    Returns ``{trigger_spec: program}`` covering *every* trigger of the rule
    (vacuous triggers map to an empty program), or None when the translated
    program cannot be incrementalized — in which case the caller keeps the
    full-state program for all triggers.

    Each per-trigger program alarms on the general delta rewrite
    (:func:`repro.algebra.delta.delta_expression`) of the translated
    violation expression with exactly that trigger's leaf delta active.  By
    linearity of the delta rules, the union of the matched triggers'
    programs covers the transaction's full delta, and under the
    pre-state-correctness premise (Def 3.5) a non-empty delta is exactly a
    violation of the post-state check.

    Two program shapes are specialized: single-``alarm`` programs (the
    output of ``trans_c`` for aborting rules), and — when ``db`` provides
    the schema — single-:class:`~repro.core.translation.CheckConstraint`
    fallbacks whose compiled form is a pure conjunction of planned
    subformulas (see the module docs for why conjunctions are the sound
    boundary).  Compensating actions are left untouched, as the paper leaves
    their analysis out of scope.
    """
    checks = _alarm_checks(translated, db)
    if checks is None:
        return None
    specialized: Dict[tuple, Program] = {}
    for trigger in rule.triggers:
        statements = []
        try:
            for expr, message in checks:
                variant = delta_expression(expr, frozenset([trigger]))
                if variant is not None:
                    statements.append(Alarm(variant, message=message))
        except NotIncrementalizable:
            return None
        specialized[trigger] = Program(statements)
    return specialized


def _alarm_checks(
    translated: Program, db
) -> Optional[List[Tuple[E.Expression, Optional[str]]]]:
    """The ``(violation_expr, message)`` checks a translated program makes.

    None when the program is not a recognized check shape (multi-statement
    programs, compensating actions, fallbacks with disjunctive or naive
    residue).
    """
    if len(translated.statements) != 1:
        return None
    statement = translated.statements[0]
    if isinstance(statement, Alarm):
        return [(statement.expr, statement.message)]
    from repro.core.translation import CheckConstraint

    if db is not None and isinstance(statement, CheckConstraint):
        from repro.calculus.planned import compile_constraint

        compiled = compile_constraint(statement.formula, db)
        exprs = compiled.conjunctive_plan_expressions()
        if exprs is None:
            return None
        return [(expr, statement.message) for expr in exprs]
    return None


def vacuous_triggers(rule, translated: Program, db=None) -> List[tuple]:
    """Triggers for which the rule's check is provably unnecessary."""
    programs = differential_programs(rule, translated, db)
    if programs is None:
        return []
    return [trigger for trigger, program in programs.items() if program.is_empty]
