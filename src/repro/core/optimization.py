"""Rule optimization: OptR / OptC (paper Alg 5.4) and differential tests.

Alg 5.4 restricts rule optimization to the *condition*:
``OptR(J) = (triggers(J), OptC(condition(J)), action(J))``.  The paper
leaves OptC's internals open, listing the applicable technique families:

* syntactic manipulation of constraint specifications (Nicolas [14];
  Hsu & Imielinski [11]) — here :func:`opt_c`, a simplification pass;
* differential relations to avoid unnecessary data access (Simon &
  Valduriez [18]; Bernstein et al. [5]; Grefen & Apers [7]) — here
  :func:`differential_programs`, which specializes a *translated* rule
  program per elementary update type so that enforcement touches only the
  tuples the transaction actually changed (``R@plus`` / ``R@minus``);
* semantic manipulation (Qian & Wiederhold [16]) — out of scope, as in the
  paper.

The differential rewrites implemented (all classical, all sound under the
paper's Def 3.5 assumption that the pre-transaction state is correct):

=========================  ==============  =======================================
translated check           trigger         differential check
=========================  ==============  =======================================
``alarm(σ_p(R))``          ``INS(R)``      ``alarm(σ_p(R@plus))``
``alarm(R ⊳_θ S)``         ``INS(R)``      ``alarm(R@plus ⊳_θ S)``
``alarm(R ⊳_θ S)``         ``DEL(S)``      ``alarm((R ⋉_θ S@minus) ⊳_θ S)``
``alarm(R ⊳_θ S)``         ``DEL(R)``      *vacuous* (deleting referers is safe)
``alarm(R ⊳_θ S)``         ``INS(S)``      *vacuous* (adding targets is safe)
``alarm(R ⋉_θ S)``         ``INS(R)``      ``alarm(R@plus ⋉_θ S)``
``alarm(R ⋉_θ S)``         ``INS(S)``      ``alarm(R ⋉_θ S@plus)``
``alarm(R ⋉_θ S)``         ``DEL(·)``      *vacuous* (exclusions only grow safer)
=========================  ==============  =======================================

A vacuous entry yields an *empty* program: the store simply has nothing to
append for that update type, which is itself a measurable saving (bench E6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.algebra import expressions as E
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm
from repro.calculus import ast as C
from repro.core.triggers import DEL, INS, TriggerSet
from repro.engine import naming


# ---------------------------------------------------------------------------
# OptC: syntactic condition simplification
# ---------------------------------------------------------------------------


def opt_c(condition: C.Formula) -> C.Formula:
    """Simplify a CL condition, preserving semantics.

    Rewrites: double negation, De-Morgan-directed constant elimination,
    ``a => false`` to ``not a``, ``true => a`` to ``a``, and recursive
    descent through quantifiers.
    """
    if isinstance(condition, C.Not):
        inner = opt_c(condition.operand)
        if isinstance(inner, C.Not):
            return inner.operand
        if isinstance(inner, C.Const):
            pass
        return C.Not(inner)
    if isinstance(condition, C.And):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, True):
            return right
        if _is_const(right, True):
            return left
        return C.And(left, right)
    if isinstance(condition, C.Or):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, False):
            return right
        if _is_const(right, False):
            return left
        return C.Or(left, right)
    if isinstance(condition, C.Implies):
        left = opt_c(condition.left)
        right = opt_c(condition.right)
        if _is_const(left, True):
            return right
        if _is_const(right, False):
            return C.Not(left)
        return C.Implies(left, right)
    if isinstance(condition, C.Forall):
        return C.Forall(condition.var, opt_c(condition.body))
    if isinstance(condition, C.Exists):
        return C.Exists(condition.var, opt_c(condition.body))
    if isinstance(condition, C.Compare):
        folded = _fold_comparison(condition)
        return folded if folded is not None else condition
    return condition


def _is_const(node: C.Formula, value: bool) -> bool:
    return (
        isinstance(node, C.Compare)
        and isinstance(node.left, C.Const)
        and isinstance(node.right, C.Const)
        and _compare_consts(node) is value
    )


def _fold_comparison(node: C.Compare) -> Optional[C.Formula]:
    if isinstance(node.left, C.Const) and isinstance(node.right, C.Const):
        return node  # kept as-is; _is_const reads its truth value
    return None


def _compare_consts(node: C.Compare) -> Optional[bool]:
    left, right = node.left.value, node.right.value
    try:
        return {
            "<": left < right,
            "<=": left <= right,
            "=": left == right,
            "!=": left != right,
            ">=": left >= right,
            ">": left > right,
        }[node.op]
    except TypeError:
        return None


def opt_r(rule):
    """Alg 5.4: optimize a rule's condition, keep triggers and action.

    Returns a new :class:`~repro.core.rules.IntegrityRule`.
    """
    from repro.core.rules import IntegrityRule

    return IntegrityRule(
        opt_c(rule.condition),
        action=rule.action,
        triggers=rule.triggers,
        name=rule.name,
    )


# ---------------------------------------------------------------------------
# Differential specialization of translated programs
# ---------------------------------------------------------------------------


def differential_programs(
    rule, translated: Program
) -> Optional[Dict[tuple, Program]]:
    """Per-trigger differential variants of a translated aborting program.

    Returns ``{trigger_spec: program}`` covering *every* trigger of the rule
    (vacuous triggers map to an empty program), or None when the translated
    program's shape is not recognized — in which case the caller keeps the
    full-state program for all triggers.

    Only single-``alarm`` programs (the output of ``trans_c`` for aborting
    rules) are specialized; compensating actions are left untouched, as the
    paper leaves their analysis out of scope.
    """
    if len(translated.statements) != 1:
        return None
    statement = translated.statements[0]
    if not isinstance(statement, Alarm):
        return None
    expr = statement.expr

    specialized: Dict[tuple, Program] = {}
    for trigger in rule.triggers:
        variant = _specialize(expr, trigger)
        if variant is _UNSUPPORTED:
            return None
        if variant is None:  # vacuous for this update type
            specialized[trigger] = Program()
        else:
            specialized[trigger] = Program(
                [Alarm(variant, message=statement.message)]
            )
    return specialized


class _Unsupported:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unsupported shape>"


_UNSUPPORTED = _Unsupported()


def _specialize(expr: E.Expression, trigger: tuple):
    """Differential variant of a violation expression for one trigger.

    Returns the rewritten expression, None when the trigger cannot produce
    new violations (vacuous), or _UNSUPPORTED.
    """
    kind, relation = trigger

    # alarm(σ_p(R)) — domain-style checks.
    if isinstance(expr, E.Select) and isinstance(expr.input, E.RelationRef):
        base = expr.input.name
        if naming.is_auxiliary(base):
            return _UNSUPPORTED
        if base != relation:
            return _UNSUPPORTED
        if kind == INS:
            return E.Select(E.RelationRef(naming.plus_name(base)), expr.predicate)
        # Deleting tuples cannot create a σ_p(R) violation.
        return None

    # alarm(R ⊳_θ S) — referential-style checks.
    if isinstance(expr, E.AntiJoin):
        return _specialize_antijoin(expr, kind, relation)

    # alarm(R ⋉_θ S) — exclusion-style checks.
    if isinstance(expr, E.SemiJoin):
        return _specialize_semijoin(expr, kind, relation)

    return _UNSUPPORTED


def _plain_name(expr: E.Expression) -> Optional[str]:
    if isinstance(expr, E.RelationRef) and not naming.is_auxiliary(expr.name):
        return expr.name
    return None


def _specialize_antijoin(expr: E.AntiJoin, kind: str, relation: str):
    left_name = _plain_name(expr.left)
    right_name = _plain_name(expr.right)
    if left_name is None or right_name is None:
        return _UNSUPPORTED
    if kind == INS and relation == left_name:
        # New referers must find a target.
        return E.AntiJoin(
            E.RelationRef(naming.plus_name(left_name)), expr.right, expr.predicate
        )
    if kind == DEL and relation == right_name:
        # Referers of deleted targets must still find one.
        affected = E.SemiJoin(
            expr.left,
            E.RelationRef(naming.minus_name(right_name)),
            expr.predicate,
        )
        return E.AntiJoin(affected, expr.right, expr.predicate)
    if kind == DEL and relation == left_name:
        return None  # removing referers is always safe
    if kind == INS and relation == right_name:
        return None  # adding targets is always safe
    return _UNSUPPORTED


def _specialize_semijoin(expr: E.SemiJoin, kind: str, relation: str):
    left_name = _plain_name(expr.left)
    right_name = _plain_name(expr.right)
    if left_name is None or right_name is None:
        return _UNSUPPORTED
    if kind == INS and relation == left_name:
        return E.SemiJoin(
            E.RelationRef(naming.plus_name(left_name)), expr.right, expr.predicate
        )
    if kind == INS and relation == right_name:
        return E.SemiJoin(
            expr.left, E.RelationRef(naming.plus_name(right_name)), expr.predicate
        )
    if kind == DEL and relation in (left_name, right_name):
        return None  # an exclusion constraint cannot be violated by deletes
    return _UNSUPPORTED


def vacuous_triggers(rule, translated: Program) -> List[tuple]:
    """Triggers for which the rule's check is provably unnecessary."""
    programs = differential_programs(rule, translated)
    if programs is None:
        return []
    return [trigger for trigger, program in programs.items() if program.is_empty]
