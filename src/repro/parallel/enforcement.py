"""Parallel constraint enforcement strategies (Grefen & Apers [7]).

Three strategies for enforcing a translated integrity check over fragmented
relations:

* ``LOCAL`` — usable when the participating relations are co-fragmented on
  the join attribute: every node checks its own fragments, no data moves.
  This is the configuration PRISMA/DB used for the Section 7 measurements
  and the source of its near-linear scale-out;
* ``BROADCAST`` — ship the (small) target relation to every node; each node
  checks its referer fragment against the full target;
* ``REPARTITION`` — hash-repartition both relations on the join attribute,
  then check locally; pays one network pass over the data but scales with
  the largest fragment.

``AUTO`` picks ``LOCAL`` when the fragmentation schemes are compatible and
``REPARTITION`` otherwise.

The checks execute for real on the fragments (hash build + probe, exactly
what :class:`~repro.algebra.expressions.AntiJoin` does on a single node) and
report both real Python time and simulated time under a
:class:`~repro.parallel.cost_model.CostModel`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.algebra import predicates as P
from repro.engine.relation import Relation
from repro.errors import FragmentationError
from repro.parallel.cost_model import CostModel, POOMA_1992
from repro.parallel.fragmentation import FragmentedRelation, HashFragmentation
from repro.parallel.nodes import FragmentedDatabase, NodeStats


class Strategy(enum.Enum):
    AUTO = "auto"
    LOCAL = "local"
    BROADCAST = "broadcast"
    REPARTITION = "repartition"


@dataclass
class _NodeWork:
    """Operator-level work split of one node (for weighted costing)."""

    scanned: int = 0
    built: int = 0
    probed: int = 0


@dataclass
class EnforcementReport:
    """Outcome of one parallel enforcement run."""

    check: str
    strategy: Strategy
    nodes: int
    violations: int
    sample: List[tuple]
    simulated_seconds: float
    python_seconds: float
    per_node: Dict[int, NodeStats] = field(default_factory=dict)
    tuples_shipped: int = 0

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def __repr__(self) -> str:
        return (
            f"EnforcementReport({self.check}, {self.strategy.value}, "
            f"{self.nodes} nodes, violations={self.violations}, "
            f"simulated={self.simulated_seconds:.3f}s)"
        )


class ParallelEnforcer:
    """Run integrity checks over a :class:`FragmentedDatabase`."""

    def __init__(
        self,
        database: FragmentedDatabase,
        cost_model: CostModel = POOMA_1992,
    ):
        self.database = database
        self.cost_model = cost_model

    # -- domain-style checks: alarm(sigma_p(R)) -----------------------------------

    def domain_check(
        self,
        relation: Union[str, FragmentedRelation],
        violation_predicate: P.Predicate,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Each node selects violating tuples from its own fragment."""
        fragmented = self._fragmented(relation)
        stats = self._fresh_stats()
        work = {node: _NodeWork() for node in range(self.database.nodes)}
        started = time.perf_counter()
        violations: List[tuple] = []
        test = P.compile_predicate(violation_predicate, fragmented.schema)
        for node in range(self.database.nodes):
            fragment = fragmented.fragment(node)
            work[node].scanned += len(fragment)
            stats[node].tuples_processed += len(fragment)
            for row in fragment.rows():
                if test(row) is True:
                    violations.append(row)
        elapsed = time.perf_counter() - started
        return self._report(
            "domain", Strategy.LOCAL, violations, stats, work, elapsed, max_sample
        )

    # -- referential checks: alarm(R antijoin_theta S) ------------------------------

    def referential_check(
        self,
        referer: Union[str, FragmentedRelation],
        referer_attr: Union[int, str],
        target: Union[str, FragmentedRelation],
        target_attr: Union[int, str],
        strategy: Strategy = Strategy.AUTO,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Referer tuples without a matching target tuple are violations."""
        return self._join_check(
            "referential",
            referer,
            referer_attr,
            target,
            target_attr,
            strategy,
            anti=True,
            max_sample=max_sample,
        )

    def exclusion_check(
        self,
        left: Union[str, FragmentedRelation],
        left_attr: Union[int, str],
        right: Union[str, FragmentedRelation],
        right_attr: Union[int, str],
        strategy: Strategy = Strategy.AUTO,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Left tuples *with* a match on the right are violations (semijoin)."""
        return self._join_check(
            "exclusion",
            left,
            left_attr,
            right,
            right_attr,
            strategy,
            anti=False,
            max_sample=max_sample,
        )

    # -- internals --------------------------------------------------------------------

    def _fragmented(self, relation) -> FragmentedRelation:
        if isinstance(relation, FragmentedRelation):
            return relation
        return self.database.relation(relation)

    def _fresh_stats(self) -> Dict[int, NodeStats]:
        return {node: NodeStats() for node in range(self.database.nodes)}

    def _choose(self, left: FragmentedRelation, left_attr, right, right_attr,
                strategy: Strategy) -> Strategy:
        if strategy is not Strategy.AUTO:
            return strategy
        if left.scheme.is_compatible_join(right.scheme, left_attr, right_attr):
            return Strategy.LOCAL
        return Strategy.REPARTITION

    def _join_check(
        self,
        check: str,
        left_relation,
        left_attr,
        right_relation,
        right_attr,
        strategy: Strategy,
        anti: bool,
        max_sample: int,
    ) -> EnforcementReport:
        left = self._fragmented(left_relation)
        right = self._fragmented(right_relation)
        chosen = self._choose(left, left_attr, right, right_attr, strategy)
        stats = self._fresh_stats()
        work = {node: _NodeWork() for node in range(self.database.nodes)}
        left_position = left.schema.position_of(left_attr) - 1
        right_position = right.schema.position_of(right_attr) - 1
        started = time.perf_counter()
        violations: List[tuple] = []

        if chosen is Strategy.LOCAL:
            if not left.scheme.is_compatible_join(right.scheme, left_attr, right_attr):
                raise FragmentationError(
                    "LOCAL strategy requires co-fragmented relations on the "
                    "join attributes; use BROADCAST or REPARTITION"
                )
            pairs = [
                (node, left.fragment(node), right.fragment(node))
                for node in range(self.database.nodes)
            ]
        elif chosen is Strategy.BROADCAST:
            merged_right = self.database.broadcast(right, stats)
            pairs = [
                (node, left.fragment(node), merged_right)
                for node in range(self.database.nodes)
            ]
        elif chosen is Strategy.REPARTITION:
            left_scheme = HashFragmentation(left_attr, self.database.nodes)
            right_scheme = HashFragmentation(right_attr, self.database.nodes)
            new_left = self.database.repartition(left, left_scheme, stats)
            new_right = self.database.repartition(right, right_scheme, stats)
            pairs = [
                (node, new_left.fragment(node), new_right.fragment(node))
                for node in range(self.database.nodes)
            ]
        else:  # pragma: no cover - AUTO resolved above
            raise FragmentationError(f"unresolved strategy {strategy}")

        for node, left_fragment, right_fragment in pairs:
            index = set()
            for row in right_fragment.rows():
                index.add(row[right_position])
            work[node].built += len(right_fragment)
            work[node].probed += len(left_fragment)
            stats[node].tuples_processed += len(right_fragment) + len(left_fragment)
            for row in left_fragment.rows():
                matched = row[left_position] in index
                # Antijoin checks keep the unmatched rows as violations;
                # semijoin (exclusion) checks keep the matched ones.
                if matched == anti:
                    continue
                violations.append(row)
        elapsed = time.perf_counter() - started
        return self._report(check, chosen, violations, stats, work, elapsed, max_sample)

    def _report(
        self,
        check: str,
        strategy: Strategy,
        violations: List[tuple],
        stats: Dict[int, NodeStats],
        work: Dict[int, _NodeWork],
        elapsed: float,
        max_sample: int,
    ) -> EnforcementReport:
        simulated = self.cost_model.startup + max(
            self.cost_model.weighted_node_time(
                stats[node],
                scanned=work[node].scanned,
                built=work[node].built,
                probed=work[node].probed,
            )
            for node in stats
        )
        shipped = sum(node_stats.tuples_sent for node_stats in stats.values())
        return EnforcementReport(
            check=check,
            strategy=strategy,
            nodes=self.database.nodes,
            violations=len(violations),
            sample=sorted(violations, key=repr)[:max_sample],
            simulated_seconds=simulated,
            python_seconds=elapsed,
            per_node=stats,
            tuples_shipped=shipped,
        )
