"""Fragment-aware parallel enforcement: one plan-backed differential pipeline.

Earlier revisions enforced three hand-built full-relation check shapes
(domain scan, referential antijoin, exclusion semijoin) with bespoke
hash-build loops and a single strategy for the whole check.  This module
replaces that path with *one* executor: the translated (or
delta-rewritten) violation expression is compiled once by the planner and
executed per node against node-local operand bindings — exactly the
single-node physical plan, bound to fragments.

Movement is decided **per operand, not per relation set**:

* base relations already live fragmented at the nodes — they stay put;
* each differential operand (``R@plus`` / ``R@minus``, the only thing a
  commit actually produces) independently picks LOCAL (already
  co-fragmented with its join partner), REPARTITION (hash-ship each delta
  tuple to one node), or BROADCAST (replicate the delta everywhere);
* a requested non-AUTO strategy forces that movement for every movable
  operand — the PRISMA-style whole-check strategies of Grefen & Apers [7]
  fall out as the uniform special case, so
  :class:`EnforcementReport` keeps its LOCAL/BROADCAST/REPARTITION
  vocabulary.

Every node's work is priced from the *plan estimate* under its local
fragment cardinalities (scan/build/probe split), communication from the
counted tuple movement, and the calibrated cost model converts both into
simulated wall-clock time — real Python time is reported alongside, as
before.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.algebra import expressions as E
from repro.algebra import planner
from repro.algebra import predicates as P
from repro.engine.relation import Relation
from repro.errors import FragmentationError
from repro.parallel.cost_model import CostModel, POOMA_1992
from repro.parallel.fragmentation import (
    FragmentationScheme,
    FragmentedRelation,
    HashFragmentation,
    RoundRobinFragmentation,
)
from repro.parallel.nodes import FragmentedDatabase, NodeStats


class Strategy(enum.Enum):
    AUTO = "auto"
    LOCAL = "local"
    BROADCAST = "broadcast"
    REPARTITION = "repartition"


@dataclass
class EnforcementReport:
    """Outcome of one parallel enforcement run."""

    check: str
    strategy: Strategy
    nodes: int
    violations: int
    sample: List[tuple]
    simulated_seconds: float
    python_seconds: float
    per_node: Dict[int, NodeStats] = field(default_factory=dict)
    tuples_shipped: int = 0
    #: Movement decision per operand name (the per-delta strategy choice).
    placements: Dict[str, Strategy] = field(default_factory=dict)
    #: "inline" (simulated nodes in-process) or "process" (fragment pool).
    executor: str = "inline"
    #: Measured pickle bytes actually moved between processes this run
    #: (0 under the inline executor, which moves references).
    bytes_shipped: int = 0

    @property
    def ok(self) -> bool:
        return self.violations == 0

    def __repr__(self) -> str:
        return (
            f"EnforcementReport({self.check}, {self.strategy.value}, "
            f"{self.nodes} nodes, violations={self.violations}, "
            f"simulated={self.simulated_seconds:.3f}s)"
        )


class _NodeContext:
    """Name resolution for one node: every operand bound to local state."""

    __slots__ = ("relations",)
    engine = "planned"

    def __init__(self, relations: Dict[str, Relation]):
        self.relations = relations

    def resolve(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise FragmentationError(
                f"operand {name!r} is not bound on this node"
            ) from None


@dataclass
class _Link:
    """One equi-join constraint between two leaf operands."""

    left_name: str
    left_attr: Union[int, str]
    right_name: str
    right_attr: Union[int, str]


class ParallelEnforcer:
    """Execute violation expressions over a :class:`FragmentedDatabase`."""

    def __init__(
        self,
        database: FragmentedDatabase,
        cost_model: CostModel = POOMA_1992,
        pool=None,
    ):
        """``pool`` may be a
        :class:`~repro.parallel.procpool.ProcessFragmentPool` with one
        worker process per node; the enforcer then installs the database's
        fragments as worker-owned state and every placement decision
        becomes a real inter-process shipment (serialized operand batches
        over pipes) instead of a same-process simulation.  Placement
        logic, per-node stats, and simulated pricing are identical either
        way."""
        self.database = database
        self.cost_model = cost_model
        self.pool = pool
        if pool is not None:
            if pool.nodes != database.nodes:
                raise FragmentationError(
                    f"pool has {pool.nodes} workers but the database has "
                    f"{database.nodes} nodes"
                )
            pool.ensure_database(database)

    # -- the classic check entry points (now thin expression builders) ---------

    def domain_check(
        self,
        relation: Union[str, FragmentedRelation],
        violation_predicate: P.Predicate,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Each node selects violating tuples from its own fragment."""
        name, bindings = self._operand(relation)
        expression = E.Select(E.RelationRef(name), violation_predicate)
        return self.enforce_expression(
            expression,
            bindings=bindings,
            strategy=Strategy.AUTO,
            check="domain",
            max_sample=max_sample,
        )

    def referential_check(
        self,
        referer: Union[str, FragmentedRelation],
        referer_attr: Union[int, str],
        target: Union[str, FragmentedRelation],
        target_attr: Union[int, str],
        strategy: Strategy = Strategy.AUTO,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Referer tuples without a matching target tuple are violations."""
        left, bindings = self._operand(referer)
        right, more = self._operand(target)
        bindings.update(more)
        expression = E.AntiJoin(
            E.RelationRef(left),
            E.RelationRef(right),
            _equality(referer_attr, target_attr),
        )
        return self.enforce_expression(
            expression,
            bindings=bindings,
            strategy=strategy,
            check="referential",
            max_sample=max_sample,
        )

    def exclusion_check(
        self,
        left: Union[str, FragmentedRelation],
        left_attr: Union[int, str],
        right: Union[str, FragmentedRelation],
        right_attr: Union[int, str],
        strategy: Strategy = Strategy.AUTO,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Left tuples *with* a match on the right are violations (semijoin)."""
        left_name, bindings = self._operand(left)
        right_name, more = self._operand(right)
        bindings.update(more)
        expression = E.SemiJoin(
            E.RelationRef(left_name),
            E.RelationRef(right_name),
            _equality(left_attr, right_attr),
        )
        return self.enforce_expression(
            expression,
            bindings=bindings,
            strategy=strategy,
            check="exclusion",
            max_sample=max_sample,
        )

    # -- the pipeline -----------------------------------------------------------

    def enforce_expression(
        self,
        expression: E.Expression,
        bindings: Optional[Dict[str, Union[Relation, FragmentedRelation]]] = None,
        strategy: Strategy = Strategy.AUTO,
        check: Optional[str] = None,
        max_sample: int = 3,
    ) -> EnforcementReport:
        """Enforce one violation expression over the fragmented system.

        ``bindings`` maps operand names — differential auxiliaries above
        all — to either a :class:`FragmentedRelation` (the differential
        already lives distributed, e.g. per-node write logs) or a plain
        :class:`Relation` (a coordinator-held commit-log delta that must be
        shipped).  Unbound base names resolve to the database's fragmented
        relations.  Returns the union of per-node plan results as an
        :class:`EnforcementReport`.
        """
        bindings = dict(bindings or {})
        nodes = self.database.nodes
        stats = {node: NodeStats() for node in range(nodes)}
        check = check or _classify(expression)
        links = _links(expression)
        carrier = _carrier(expression)
        started = time.perf_counter()
        extra_shipped = 0
        placements: Dict[str, Strategy] = {}
        per_node: Dict[str, List[Relation]] = {}
        schemes: Dict[str, Optional[FragmentationScheme]] = {}

        order = [leaf.name for leaf in planner.expression_leaves(expression)]
        # The carrier (outermost probe side) is placed first: joins hash
        # other operands to *its* fragmentation.
        if carrier in order:
            order.remove(carrier)
            order.insert(0, carrier)
        for name in order:
            source = self._source(name, bindings)
            is_carrier = name == carrier
            placement, fragments, scheme, shipped = self._place(
                name, source, is_carrier, links, schemes, strategy, stats
            )
            placements[name] = placement
            per_node[name] = fragments
            schemes[name] = scheme
            extra_shipped += shipped
        self._validate_links(links, schemes, placements, strategy)

        plan = planner.get_plan(expression)
        violations: List[tuple] = []
        bytes_shipped = 0
        if self.pool is not None:
            # Real shared-nothing execution: ship only the moved operands,
            # then run the compiled plan on every worker concurrently.
            bytes_shipped = self._ship_moved(order, per_node, placements, bindings)
            try:
                for rows in self.pool.execute(expression):
                    violations.extend(rows)
            finally:
                self.pool.clear_bindings()
        else:
            for node in range(nodes):
                context = _NodeContext(
                    {name: fragments[node] for name, fragments in per_node.items()}
                )
                result = plan.execute(context)
                violations.extend(result.rows())
        estimates = []
        for node in range(nodes):
            cards = {
                name: float(len(fragments[node]))
                for name, fragments in per_node.items()
            }
            estimates.append(plan.estimate(cards))
        elapsed = time.perf_counter() - started

        simulated = self.cost_model.startup + max(
            self.cost_model.weighted_node_time(
                stats[node],
                scanned=estimates[node].scanned,
                built=estimates[node].built,
                probed=estimates[node].probed,
            )
            for node in range(nodes)
        )
        shipped = extra_shipped + sum(
            node_stats.tuples_sent for node_stats in stats.values()
        )
        return EnforcementReport(
            check=check,
            strategy=_overall(strategy, placements),
            nodes=nodes,
            violations=len(violations),
            sample=sorted(violations, key=repr)[:max_sample],
            simulated_seconds=simulated,
            python_seconds=elapsed,
            per_node=stats,
            tuples_shipped=shipped,
            placements=placements,
            executor="inline" if self.pool is None else "process",
            bytes_shipped=bytes_shipped,
        )

    def _ship_moved(self, order, per_node, placements, bindings) -> int:
        """Ship each moved operand to the pool's workers; returns bytes.

        LOCAL-placed base relations are already resident at their owning
        worker (installed when the enforcer adopted the pool) and move
        nothing; everything else — repartitioned carriers, shipped deltas,
        broadcast operands, explicit bindings — crosses as pickled blobs.
        """
        shipped = 0
        for name in order:
            fragments = per_node[name]
            if placements[name] is Strategy.LOCAL and name not in bindings:
                if name in self.database:
                    if name not in self.pool.installed:
                        # A base fragmented after pool adoption becomes
                        # resident now (residency, not per-check movement).
                        self.pool.install(name, fragments)
                    continue
            first = fragments[0]
            if all(fragment is first for fragment in fragments):
                shipped += self.pool.broadcast_bind(name, first)
            else:
                shipped += self.pool.bind_fragments(name, fragments)
        return shipped

    # -- operand resolution and placement ----------------------------------------

    def _operand(self, relation) -> tuple:
        """Normalize a check argument to ``(name, bindings)``."""
        if isinstance(relation, FragmentedRelation):
            return relation.name, {relation.name: relation}
        return relation, {}

    def _source(self, name: str, bindings):
        if name in bindings:
            return bindings[name]
        if "@" in name:
            raise FragmentationError(
                f"auxiliary relation {name!r} is not bound; call "
                f"bind_auxiliary first"
            )
        return self.database.relation(name)

    def _place(
        self,
        name: str,
        source,
        is_carrier: bool,
        links: List[_Link],
        schemes: Dict[str, Optional[FragmentationScheme]],
        strategy: Strategy,
        stats: Dict[int, NodeStats],
    ) -> tuple:
        """Decide and perform one operand's movement.

        Returns ``(placement, per_node_fragments, effective_scheme,
        extra_shipped)``; ``effective_scheme`` is None for replicated
        operands (which are join-compatible with anything).
        """
        nodes = self.database.nodes
        link_attr = _link_attr(name, links)
        if isinstance(source, FragmentedRelation):
            if source.scheme.fragments != nodes:
                raise FragmentationError(
                    f"operand {name!r} is fragmented over "
                    f"{source.scheme.fragments} nodes, system has {nodes}"
                )
            if is_carrier:
                # The carrier anchors the check's fragmentation.  Explicit
                # REPARTITION rehashes it on the join attribute; AUTO does
                # so only when its current scheme could not possibly be
                # joined locally (attribute-blind or hashed on another
                # attribute) — partners placed later adapt to it otherwise.
                rehash = link_attr is not None and (
                    strategy is Strategy.REPARTITION
                    or (
                        strategy is Strategy.AUTO
                        and not _hashed_on(source.scheme, link_attr)
                    )
                )
                if rehash:
                    scheme = HashFragmentation(link_attr, nodes)
                    moved = self.database.repartition(source, scheme, stats)
                    return (
                        Strategy.REPARTITION,
                        list(moved.fragments),
                        scheme,
                        0,
                    )
                return Strategy.LOCAL, list(source.fragments), source.scheme, 0
            movement = self._movement(
                name, source.scheme, link_attr, links, schemes, strategy
            )
            if movement is Strategy.LOCAL:
                return Strategy.LOCAL, list(source.fragments), source.scheme, 0
            if movement is Strategy.REPARTITION:
                scheme = HashFragmentation(link_attr, nodes)
                moved = self.database.repartition(source, scheme, stats)
                return Strategy.REPARTITION, list(moved.fragments), scheme, 0
            merged = self.database.broadcast(source, stats)
            return Strategy.BROADCAST, [merged] * nodes, None, 0
        # A plain Relation: a coordinator-held delta that must be shipped.
        if strategy is Strategy.LOCAL:
            raise FragmentationError(
                f"operand {name!r} is not fragmented; LOCAL enforcement "
                f"requires co-fragmented operands — ship it with "
                f"REPARTITION or BROADCAST"
            )
        # The carrier is the probe side whose rows become violations: it
        # must live on exactly one node each (replicating it would count
        # every violation once per node), so it always partitions.
        replicate = not is_carrier and (
            strategy is Strategy.BROADCAST
            or (strategy is Strategy.AUTO and link_attr is None)
        )
        if replicate:
            for node in range(nodes):
                stats[node].tuples_received += len(source)
            return Strategy.BROADCAST, [source] * nodes, None, len(source) * nodes
        scheme: FragmentationScheme
        if link_attr is not None:
            scheme = HashFragmentation(link_attr, nodes)
        else:
            scheme = RoundRobinFragmentation(nodes)
        fragmented = FragmentedRelation(source.schema, scheme)
        for row in source.rows():
            node = fragmented.insert(row)
            stats[node].tuples_received += 1
        return (
            Strategy.REPARTITION,
            list(fragmented.fragments),
            scheme,
            len(source),
        )

    def _movement(
        self, name, scheme, link_attr, links, schemes, strategy
    ) -> Strategy:
        """Movement for a non-carrier fragmented operand under ``strategy``."""
        if strategy is Strategy.BROADCAST:
            return Strategy.BROADCAST
        compatible = _compatible_everywhere(name, scheme, links, schemes)
        if strategy is Strategy.LOCAL:
            if not compatible:
                raise FragmentationError(
                    "LOCAL strategy requires co-fragmented relations on the "
                    "join attributes; use BROADCAST or REPARTITION"
                )
            return Strategy.LOCAL
        if strategy is Strategy.REPARTITION:
            return (
                Strategy.REPARTITION
                if link_attr is not None
                else Strategy.BROADCAST
            )
        # AUTO: stay local when co-fragmented; otherwise ship each tuple
        # once (repartition) when a join attribute is known, replicate as
        # the last resort.
        if compatible:
            return Strategy.LOCAL
        if link_attr is not None:
            return Strategy.REPARTITION
        return Strategy.BROADCAST

    def _validate_links(self, links, schemes, placements, strategy) -> None:
        """Every equi-join must be node-local after placement."""
        for link in links:
            left_scheme = schemes.get(link.left_name)
            right_scheme = schemes.get(link.right_name)
            if right_scheme is None or left_scheme is None:
                continue  # a replicated side joins locally with anything
            if left_scheme.is_compatible_join(
                right_scheme, link.left_attr, link.right_attr
            ):
                continue
            if strategy is Strategy.LOCAL:
                raise FragmentationError(
                    "LOCAL strategy requires co-fragmented relations on the "
                    "join attributes; use BROADCAST or REPARTITION"
                )
            raise FragmentationError(
                f"operands {link.left_name!r} and {link.right_name!r} are "
                f"not co-fragmented on ({link.left_attr}, {link.right_attr}) "
                f"after placement"
            )


# ---------------------------------------------------------------------------
# Expression analysis
# ---------------------------------------------------------------------------


def _classify(expression: E.Expression) -> str:
    if isinstance(expression, E.Select):
        return "domain"
    if isinstance(expression, E.AntiJoin):
        return "referential"
    if isinstance(expression, E.SemiJoin):
        return "exclusion"
    raise FragmentationError(
        f"unsupported alarm shape for parallel enforcement: {expression!r}"
    )


def _carrier(expression: E.Expression) -> Optional[str]:
    """The probe-side leaf whose fragmentation anchors the check."""
    node = expression
    while True:
        if isinstance(node, (E.RelationRef, E.Delta)):
            return node.name
        if isinstance(node, E.Select):
            node = node.input
        elif isinstance(node, (E.SemiJoin, E.AntiJoin, E.Join)):
            node = node.left
        else:
            return None


def _links(expression: E.Expression) -> List[_Link]:
    """Equi-join constraints between leaves, validating the overall shape.

    Per-node evaluation of the compiled plan is only globally correct when
    the tree is built from selections and equi-joins over leaf operands
    (union-of-fragments distributes through those); anything else —
    aggregates, set operators, computed projections — is rejected exactly
    like the pre-pipeline shape dispatch rejected it.
    """
    links: List[_Link] = []

    def visit(node: E.Expression) -> None:
        if isinstance(node, (E.RelationRef, E.Delta)):
            return
        if isinstance(node, E.Select):
            visit(node.input)
            return
        if isinstance(node, (E.SemiJoin, E.AntiJoin, E.Join)):
            left_attr, right_attr = _equality_attributes(node.predicate)
            left_name = _carrier(node.left)
            right_name = _carrier(node.right)
            if left_name is None or right_name is None:
                raise FragmentationError(
                    "unsupported nested shape for parallel enforcement"
                )
            links.append(_Link(left_name, left_attr, right_name, right_attr))
            visit(node.left)
            visit(node.right)
            return
        raise FragmentationError(
            f"unsupported alarm shape for parallel enforcement: {node!r}"
        )

    visit(expression)
    return links


def _hashed_on(scheme: FragmentationScheme, attr) -> bool:
    """Is ``scheme`` hash fragmentation on exactly ``attr``?"""
    return isinstance(scheme, HashFragmentation) and scheme.attr == attr


def _link_attr(name: str, links: List[_Link]):
    """The join attribute ``name`` participates through, if any."""
    for link in links:
        if link.left_name == name:
            return link.left_attr
        if link.right_name == name:
            return link.right_attr
    return None


def _compatible_everywhere(name, scheme, links, schemes) -> bool:
    """Is ``name`` co-fragmented with every already-placed join partner?"""
    relevant = [
        link
        for link in links
        if name in (link.left_name, link.right_name)
    ]
    if not relevant:
        return True
    for link in relevant:
        if link.left_name == name:
            partner, my_attr, partner_attr = (
                link.right_name,
                link.left_attr,
                link.right_attr,
            )
        else:
            partner, my_attr, partner_attr = (
                link.left_name,
                link.right_attr,
                link.left_attr,
            )
        partner_scheme = schemes.get(partner)
        if partner not in schemes:
            continue  # partner not placed yet; it will adapt to us
        if partner_scheme is None:
            continue  # replicated partner: always local
        if link.left_name == name:
            ok = scheme.is_compatible_join(partner_scheme, my_attr, partner_attr)
        else:
            ok = partner_scheme.is_compatible_join(scheme, partner_attr, my_attr)
        if not ok:
            return False
    return True


def _overall(requested: Strategy, placements: Dict[str, Strategy]) -> Strategy:
    """The report-level strategy: the requested one, or the dominant
    movement actually performed under AUTO."""
    if requested is not Strategy.AUTO:
        return requested
    chosen = set(placements.values()) - {Strategy.LOCAL}
    if not chosen:
        return Strategy.LOCAL
    if Strategy.REPARTITION in chosen:
        return Strategy.REPARTITION
    return Strategy.BROADCAST


def _equality(left_attr, right_attr) -> P.Predicate:
    return P.Comparison(
        "=", P.ColRef(left_attr, "left"), P.ColRef(right_attr, "right")
    )


def _equality_attributes(predicate: P.Predicate):
    """Extract (left_attr, right_attr) from a single-equality θ."""
    if (
        isinstance(predicate, P.Comparison)
        and predicate.op == "="
        and isinstance(predicate.left, P.ColRef)
        and isinstance(predicate.right, P.ColRef)
    ):
        left, right = predicate.left, predicate.right
        if left.side == "left" and right.side == "right":
            return left.attr, right.attr
        if left.side == "right" and right.side == "left":
            return right.attr, left.attr
    raise FragmentationError(
        f"parallel join checks require a single attribute equality, "
        f"found {predicate!r}"
    )
