"""Analytic cost model for the simulated multi-node system.

We cannot time an 8-node POOMA multiprocessor; we *can* count exactly the
work the fragmented enforcement algorithms perform (tuples scanned, hash
probes, tuples shipped, messages exchanged — all produced by really running
the algorithms on the fragments) and convert the counts into time with
per-unit costs.

The default parameter set :data:`POOMA_1992` is calibrated against the two
measurements Section 7 publishes for the 5000-key / 50000-FK workload on
8 nodes:

* referential check after inserting 5000 FK tuples: "within 3 seconds";
* domain check in the same situation: "less than 1 second".

With the differential optimization the referential check probes the 5000
inserted tuples against a hash table built over the 5000-tuple key
relation, and the domain check scans the 5000 inserted tuples.  Solving

    domain:       5000 * scan / 8                   ~= 0.8 s
    referential:  (5000 * build + 5000 * probe) / 8 ~= 2.5 s

gives ``scan ≈ 1.28 ms``, ``build + probe ≈ 4 ms`` per tuple — slow by
2026 standards, entirely plausible for interpreted POOL-X objects on 1992
hardware.  *Absolute* simulated times are therefore anchored to the paper;
*relative* behaviour (scaling curves, strategy comparisons) comes from the
measured counts alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.parallel.nodes import NodeStats


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs (seconds) of the simulated machine."""

    scan_per_tuple: float
    build_per_tuple: float
    probe_per_tuple: float
    transfer_per_tuple: float
    message_latency: float
    startup: float = 0.0

    def node_time(self, stats: NodeStats) -> float:
        """CPU + communication time of one node."""
        cpu = stats.tuples_processed * self.scan_per_tuple
        comm = (
            (stats.tuples_sent + stats.tuples_received) * self.transfer_per_tuple
            + stats.messages_sent * self.message_latency
        )
        return cpu + comm

    def parallel_time(self, per_node: Dict[int, NodeStats]) -> float:
        """Makespan: slowest node bounds the enforcement step."""
        if not per_node:
            return self.startup
        return self.startup + max(
            self.node_time(stats) for stats in per_node.values()
        )

    def weighted_node_time(
        self,
        stats: NodeStats,
        scanned: int = 0,
        built: int = 0,
        probed: int = 0,
    ) -> float:
        """Time with operator-specific weights (scan/build/probe split)."""
        cpu = (
            scanned * self.scan_per_tuple
            + built * self.build_per_tuple
            + probed * self.probe_per_tuple
        )
        comm = (
            (stats.tuples_sent + stats.tuples_received) * self.transfer_per_tuple
            + stats.messages_sent * self.message_latency
        )
        return cpu + comm

    def plan_time(self, estimate, nodes: int = 1) -> float:
        """Predicted time of a physical plan from the planner's estimate.

        ``estimate`` is a :class:`repro.algebra.physical.PlanEstimate`
        (tuple counts by work kind); the work is assumed perfectly
        partitioned over ``nodes`` — the same idealization Section 7's
        calibration uses.  Unlike :meth:`weighted_node_time` this needs no
        post-hoc operator trace: it prices a plan *before* running it.
        Transfer work the estimate carries (``transferred``/``messages``,
        filled in by the fragment-aware enforcement layer) is priced at the
        model's per-tuple transfer cost and message latency — it is wire
        work, so it does not divide by the node count.
        """
        cpu = (
            estimate.scanned * self.scan_per_tuple
            + estimate.built * self.build_per_tuple
            + estimate.probed * self.probe_per_tuple
        )
        comm = (
            getattr(estimate, "transferred", 0.0) * self.transfer_per_tuple
            + getattr(estimate, "messages", 0.0) * self.message_latency
        )
        return self.startup + cpu / max(nodes, 1) + comm

    def ship_time(
        self, tuples: float, nodes: int, replicate: bool = False
    ) -> float:
        """Cost of moving ``tuples`` rows to ``nodes`` nodes.

        Partitioned shipping (the repartition strategies) sends each tuple
        to exactly one node; ``replicate`` (broadcast) sends every tuple to
        every node.  One message per receiving node either way.
        """
        factor = nodes if replicate else 1
        return (
            tuples * factor * self.transfer_per_tuple
            + nodes * self.message_latency
        )


# Calibrated to Section 7 (see module docstring).  scan 1.28 ms; hash build
# 2.4 ms; hash probe 1.6 ms; transfer 0.2 ms/tuple; message latency 5 ms.
POOMA_1992 = CostModel(
    scan_per_tuple=1.28e-3,
    build_per_tuple=2.4e-3,
    probe_per_tuple=1.6e-3,
    transfer_per_tuple=0.2e-3,
    message_latency=5e-3,
    startup=0.05,
)

def predict_enforcement_time(
    expression,
    cardinalities=None,
    model: "CostModel" = POOMA_1992,
    nodes: int = 1,
    database=None,
    deltas=None,
) -> float:
    """Price an enforcement expression from planner estimates alone.

    Compiles (or fetches the cached plan of) the algebra ``expression``,
    asks the planner for its static cardinality/work estimate under the
    given relation ``cardinalities``, and converts it to seconds with
    ``model``.  This replaces the old trace-then-price loop for what-if
    questions ("would this constraint be enforceable at 1M tuples on 8
    nodes?") — no data or execution needed.

    Passing ``database`` instead of ``cardinalities`` prices the plan under
    *runtime statistics* (observed cardinalities plus index distinct-key
    counts, drift-cached by :func:`repro.algebra.planner.plan_estimate`) —
    sharper selectivities for the index-accelerated plan shapes.

    ``deltas`` maps auxiliary differential names (``"fk@plus"``) to their
    expected tuple counts; delta-plan scans price from these |Δ| values
    instead of |R|, which is what makes the enforcement scheduler prefer a
    differential program over full re-evaluation whenever one exists.
    Without explicit ``deltas``, a ``database`` still prices delta scans
    from its *observed* per-relation |Δ| distribution
    (:class:`~repro.engine.database.DeltaObservations`, exposed through the
    statistics snapshot); the fixed default only remains for cold starts.
    """
    from repro.algebra.planner import estimate_expression, plan_estimate

    if deltas:
        # Overlay the delta sizes onto the same statistics the full plan is
        # priced under (index distinct-key counts included), so a scheduler
        # comparing delta vs full compares like with like.  No estimate
        # caching here: delta sizes vary per transaction.
        from repro.algebra.statistics import RuntimeStatistics

        if database is not None:
            base = RuntimeStatistics.capture(database)
        elif hasattr(cardinalities, "cardinalities"):
            base = cardinalities
        else:
            base = RuntimeStatistics(cardinalities or {})
        stats = RuntimeStatistics(
            {**base.cardinalities, **deltas},
            base.distinct,
            base.logical_time,
            delta_sizes=getattr(base, "delta_sizes", None),
        )
        estimate = estimate_expression(expression, stats)
    elif database is not None:
        estimate = plan_estimate(expression, database)
    else:
        estimate = estimate_expression(expression, cardinalities)
    return model.plan_time(estimate, nodes)


def predict_commit_time(
    deltas,
    model: "CostModel" = POOMA_1992,
    nodes: int = 1,
    database=None,
) -> float:
    """Price a transaction's write path from its |Δ| alone.

    ``deltas`` maps relation names (or ``R@plus``/``R@minus`` auxiliary
    names) to expected changed-tuple counts.  Each delta tuple costs one
    scan unit (the in-place dictionary update of
    :meth:`repro.engine.database.Database.apply_deltas`) plus one build
    unit per *built* hash index maintained on the relation (discovered from
    ``database`` when given).  Before the overlay write path this had to be
    priced by |R|: the eager working copy duplicated every touched relation
    on first write, so a one-tuple update against a million-tuple relation
    cost a million scan units.  Now the cost model's answer — like the
    engine's — depends only on what the transaction changes.
    """
    from repro.engine import naming

    work = 0.0
    for name, size in deltas.items():
        base = naming.base_of(name)
        built_indexes = 0
        if database is not None and base in database:
            indexes = database.relation(base).indexes
            if indexes is not None:
                built_indexes = sum(1 for index in indexes if index.built)
        work += float(size) * (
            model.scan_per_tuple + built_indexes * model.build_per_tuple
        )
    return model.startup + work / max(nodes, 1)


def predict_audit_time(
    program,
    cardinalities=None,
    model: "CostModel" = POOMA_1992,
    nodes: int = 1,
    database=None,
    deltas=None,
    ship: Optional[str] = None,
) -> float:
    """Price a full or differential audit of an integrity program.

    Sums the planner estimates of every relation-valued expression the
    program's statements evaluate — the alarm arguments, any temporary
    assignments feeding them, and the compiled sub-plans of
    ``CheckConstraint`` fallback statements (resolved through
    :mod:`repro.calculus.planned` when a ``database`` supplies the schema) —
    i.e. the plan shapes the unified audit path of
    :meth:`repro.core.subsystem.IntegrityController.violated_constraints`
    executes, charging the model's startup once.

    ``deltas`` maps auxiliary differential names (``"fk@plus"``) to tuple
    counts so *differential* programs price their delta scans from |Δ| —
    the audit scheduler uses this to decide sync-inline vs fan-out per
    rule.  With ``nodes > 1`` the audit is priced as a fragmented fan-out,
    and ``ship`` adds the movement cost of getting a coordinator-held Δ to
    the nodes: ``"repartition"`` ships each delta tuple to one node,
    ``"broadcast"`` replicates the delta everywhere — the shipping-Δ vs
    shipping-fragments comparison the fragment-aware pipeline makes.
    """
    from repro.algebra import planner

    seconds = model.startup
    stats = None
    if deltas:
        from repro.algebra.statistics import RuntimeStatistics

        if database is not None:
            base = RuntimeStatistics.capture(database)
        elif hasattr(cardinalities, "cardinalities"):
            base = cardinalities
        else:
            base = RuntimeStatistics(cardinalities or {})
        stats = RuntimeStatistics(
            {**base.cardinalities, **deltas},
            base.distinct,
            base.logical_time,
            delta_sizes=getattr(base, "delta_sizes", None),
        )
    for statement in program:
        expressions = list(planner.statement_expressions(statement))
        formula = getattr(statement, "formula", None)
        if not expressions and formula is not None and database is not None:
            from repro.calculus.planned import compile_constraint

            expressions = list(
                compile_constraint(formula, database.schema).plan_expressions()
            )
        for expression in expressions:
            if stats is not None:
                estimate = planner.estimate_expression(expression, stats)
            elif database is not None:
                estimate = planner.plan_estimate(expression, database)
            else:
                estimate = planner.estimate_expression(expression, cardinalities)
            seconds += model.plan_time(estimate, nodes) - model.startup
    if ship is not None and nodes > 1 and deltas:
        seconds += model.ship_time(
            sum(deltas.values()), nodes, replicate=(ship == "broadcast")
        )
    return seconds


# A contemporary in-memory machine, for the EXPERIMENTS.md comparison runs.
MODERN_2026 = CostModel(
    scan_per_tuple=20e-9,
    build_per_tuple=60e-9,
    probe_per_tuple=40e-9,
    transfer_per_tuple=8e-9,
    message_latency=2e-6,
    startup=1e-4,
)
