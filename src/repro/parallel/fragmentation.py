"""Horizontal fragmentation schemes.

A fragmentation scheme assigns every tuple of a relation to one of ``n``
fragments (one fragment per simulated node).  Three classical schemes are
provided:

* :class:`HashFragmentation` — hash of one attribute modulo node count;
  the scheme PRISMA/DB used for its base relations, and the one that makes
  referential checks *local* when both relations hash the same key;
* :class:`RangeFragmentation` — explicit boundary list;
* :class:`RoundRobinFragmentation` — load-balanced but attribute-blind
  (always forces a redistribution strategy for joins).
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Union

from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.errors import FragmentationError


def _stable_hash(value) -> int:
    """Deterministic cross-run hash (Python's str hash is salted)."""
    if isinstance(value, int):
        return value * 2654435761 & 0xFFFFFFFF
    if isinstance(value, float):
        value = repr(value)
    return zlib.crc32(str(value).encode("utf-8"))


class FragmentationScheme:
    """Base class: maps rows to fragment indices."""

    def __init__(self, fragments: int):
        if fragments < 1:
            raise FragmentationError("fragment count must be >= 1")
        self.fragments = fragments

    def fragment_of(self, row: tuple, schema: RelationSchema) -> int:
        raise NotImplementedError

    def is_compatible_join(self, other, my_attr, other_attr) -> bool:
        """True when equijoins on the given attributes are node-local."""
        return False


class HashFragmentation(FragmentationScheme):
    """Hash fragmentation on one attribute."""

    def __init__(self, attr: Union[int, str], fragments: int):
        super().__init__(fragments)
        self.attr = attr

    def fragment_of(self, row: tuple, schema: RelationSchema) -> int:
        position = schema.position_of(self.attr) - 1
        return _stable_hash(row[position]) % self.fragments

    def is_compatible_join(self, other, my_attr, other_attr) -> bool:
        if not isinstance(other, HashFragmentation):
            return False
        if self.fragments != other.fragments:
            return False
        return _same_attr(self.attr, my_attr) and _same_attr(other.attr, other_attr)

    def __repr__(self) -> str:
        return f"HashFragmentation({self.attr!r}, {self.fragments})"


class RangeFragmentation(FragmentationScheme):
    """Range fragmentation: boundaries[i] is the exclusive upper bound of
    fragment i; the last fragment is unbounded."""

    def __init__(self, attr: Union[int, str], boundaries: Sequence):
        super().__init__(len(boundaries) + 1)
        self.attr = attr
        self.boundaries = list(boundaries)
        if self.boundaries != sorted(self.boundaries):
            raise FragmentationError("range boundaries must be sorted")

    def fragment_of(self, row: tuple, schema: RelationSchema) -> int:
        position = schema.position_of(self.attr) - 1
        value = row[position]
        for index, bound in enumerate(self.boundaries):
            if value < bound:
                return index
        return len(self.boundaries)

    def __repr__(self) -> str:
        return f"RangeFragmentation({self.attr!r}, {self.boundaries})"


class RoundRobinFragmentation(FragmentationScheme):
    """Round-robin: perfectly balanced, join-incompatible with everything."""

    def __init__(self, fragments: int):
        super().__init__(fragments)
        self._next = 0

    def fragment_of(self, row: tuple, schema: RelationSchema) -> int:
        index = self._next
        self._next = (self._next + 1) % self.fragments
        return index

    def __repr__(self) -> str:
        return f"RoundRobinFragmentation({self.fragments})"


def _same_attr(a, b) -> bool:
    return a == b


class FragmentedRelation:
    """A relation split into per-node fragments under a scheme."""

    def __init__(self, schema: RelationSchema, scheme: FragmentationScheme):
        self.schema = schema
        self.scheme = scheme
        self.fragments: List[Relation] = [
            Relation(schema) for _ in range(scheme.fragments)
        ]

    @property
    def name(self) -> str:
        return self.schema.name

    def insert(self, row: tuple) -> int:
        """Insert a row into its fragment; returns the fragment index."""
        row = self.schema.validate_tuple(tuple(row))
        index = self.scheme.fragment_of(row, self.schema)
        self.fragments[index].insert(row, _validated=True)
        return index

    def load(self, rows) -> None:
        for row in rows:
            self.insert(row)

    def fragment(self, index: int) -> Relation:
        return self.fragments[index]

    def cardinality(self) -> int:
        return sum(len(fragment) for fragment in self.fragments)

    def merged(self) -> Relation:
        """The reconstructed global relation (fragmentation transparency)."""
        result = Relation(self.schema)
        for fragment in self.fragments:
            for row in fragment.rows():
                result.insert(row, _validated=True)
        return result

    def skew(self) -> float:
        """max/avg fragment size (1.0 = perfectly balanced)."""
        sizes = [len(fragment) for fragment in self.fragments]
        total = sum(sizes)
        if total == 0:
            return 1.0
        average = total / len(sizes)
        return max(sizes) / average if average else 1.0

    def __repr__(self) -> str:
        sizes = [len(fragment) for fragment in self.fragments]
        return f"FragmentedRelation({self.name}, fragments={sizes})"
