"""Parallel constraint enforcement on fragmented relations.

The paper's prototype ran on PRISMA/DB, a parallel main-memory DBMS on an
8-node POOMA multiprocessor, using the fragmented-relation enforcement
algorithms of Grefen & Apers (*Parallel Handling of Integrity Constraints
on Fragmented Relations*, DPDS 1990 — the paper's [7]).  We do not have a
POOMA; this package substitutes a **simulated multi-node system**:

* relations are horizontally fragmented (hash / range / round-robin) over
  ``n`` simulated nodes (:mod:`repro.parallel.fragmentation`);
* the fragmented enforcement algorithms *actually run* on the fragments,
  producing real per-node operator traces (tuples processed, tuples
  shipped, messages) (:mod:`repro.parallel.enforcement`);
* an analytic cost model calibrated against Section 7's two published
  measurements turns those traces into simulated wall-clock times
  (:mod:`repro.parallel.cost_model`).

This preserves exactly what the paper's evaluation demonstrates: the
*shape* of parallel enforcement cost — local checks scale near-linearly
when relations are co-fragmented on the join attribute, redistribution
strategies pay shipping costs, domain checks are about 3x cheaper than
referential checks on the Section 7 workload.
"""

from repro.parallel.fragmentation import (
    FragmentedRelation,
    HashFragmentation,
    RangeFragmentation,
    RoundRobinFragmentation,
)
from repro.parallel.nodes import FragmentedDatabase, NodeStats
from repro.parallel.cost_model import CostModel, POOMA_1992
from repro.parallel.enforcement import (
    EnforcementReport,
    ParallelEnforcer,
    Strategy,
)
from repro.parallel.bridge import ParallelRuleEnforcer
from repro.parallel.procpool import ProcessFragmentPool

__all__ = [
    "CostModel",
    "EnforcementReport",
    "FragmentedDatabase",
    "FragmentedRelation",
    "HashFragmentation",
    "NodeStats",
    "POOMA_1992",
    "ParallelEnforcer",
    "ParallelRuleEnforcer",
    "ProcessFragmentPool",
    "RangeFragmentation",
    "RoundRobinFragmentation",
    "Strategy",
]
