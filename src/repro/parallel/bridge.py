"""From translated integrity programs to parallel enforcement.

PRISMA/DB did not enforce constraints tuple-at-a-time: the alarm programs
produced by rule translation (Section 5.2.2) were executed by the parallel
query layer over fragmented relations ([7]).  This module is that bridge:
it hands each alarm's violation expression — full-state checks and
delta-rewritten differential programs alike — to the plan-backed
fragment-aware pipeline of :class:`~repro.parallel.enforcement.
ParallelEnforcer`, which compiles the expression once and executes it per
node against local operand bindings, choosing a movement strategy per
differential operand.

Auxiliary names (``R@plus``/``R@minus``) are resolved through a
caller-supplied mapping: either :class:`~repro.parallel.fragmentation.
FragmentedRelation` differentials (per-node write logs) or plain
:class:`~repro.engine.relation.Relation` deltas (a coordinator-held commit
record, shipped per the chosen strategy).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.algebra.programs import Program
from repro.algebra.statements import Alarm
from repro.engine.relation import Relation
from repro.errors import FragmentationError
from repro.parallel.cost_model import CostModel, POOMA_1992
from repro.parallel.enforcement import (
    EnforcementReport,
    ParallelEnforcer,
    Strategy,
)
from repro.parallel.fragmentation import FragmentedRelation
from repro.parallel.nodes import FragmentedDatabase


class ParallelRuleEnforcer:
    """Execute translated alarm programs over a fragmented database."""

    def __init__(
        self,
        database: FragmentedDatabase,
        cost_model: CostModel = POOMA_1992,
        auxiliaries: Union[
            Dict[str, Union[FragmentedRelation, Relation]], None
        ] = None,
    ):
        self.database = database
        self.enforcer = ParallelEnforcer(database, cost_model)
        self.auxiliaries = dict(auxiliaries or {})

    def bind_auxiliary(
        self, name: str, relation: Union[FragmentedRelation, Relation]
    ) -> None:
        """Register a differential (e.g. ``fk@plus``), fragmented or not."""
        self.auxiliaries[name] = relation

    # -- program-level entry points ------------------------------------------------

    def enforce_program(
        self, program: Program, strategy: Strategy = Strategy.AUTO
    ) -> List[EnforcementReport]:
        """Enforce every alarm statement of a translated program."""
        reports = []
        for statement in program:
            if isinstance(statement, Alarm):
                reports.append(self.enforce_alarm(statement, strategy))
            else:
                raise FragmentationError(
                    f"parallel enforcement supports alarm programs only, "
                    f"found {type(statement).__name__}"
                )
        return reports

    def enforce_alarm(
        self, alarm: Alarm, strategy: Strategy = Strategy.AUTO
    ) -> EnforcementReport:
        """Run one alarm expression through the fragment-aware pipeline."""
        return self.enforcer.enforce_expression(
            alarm.expr, bindings=self.auxiliaries, strategy=strategy
        )
