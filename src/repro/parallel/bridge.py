"""From translated integrity programs to parallel enforcement.

PRISMA/DB did not enforce constraints tuple-at-a-time: the alarm programs
produced by rule translation (Section 5.2.2) were executed by the parallel
query layer over fragmented relations ([7]).  This module is that bridge:
it recognizes the violation-expression shapes ``trans_c`` produces —

* ``alarm(σ_p(R))`` — domain family,
* ``alarm(R ⊳_θ S)`` — referential family (θ an attribute equality),
* ``alarm(R ⋉_θ S)`` — exclusion family,
* ``alarm((R ⋉_θ S@minus) ⊳_θ S)`` — the delete-path differential
  referential check (§5.2.1): referers of deleted targets must still find
  a target,

— and dispatches them to the corresponding
:class:`~repro.parallel.enforcement.ParallelEnforcer` check.  Differential
programs work too: auxiliary names (``R@plus``/``R@minus``) are resolved
through a caller-supplied mapping of fragmented relations (the parallel
system's local differentials).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra.programs import Program
from repro.algebra.statements import Alarm
from repro.errors import FragmentationError
from repro.parallel.cost_model import CostModel, POOMA_1992
from repro.parallel.enforcement import (
    EnforcementReport,
    ParallelEnforcer,
    Strategy,
)
from repro.parallel.fragmentation import FragmentedRelation
from repro.parallel.nodes import FragmentedDatabase


class ParallelRuleEnforcer:
    """Execute translated alarm programs over a fragmented database."""

    def __init__(
        self,
        database: FragmentedDatabase,
        cost_model: CostModel = POOMA_1992,
        auxiliaries: Union[Dict[str, FragmentedRelation], None] = None,
    ):
        self.database = database
        self.enforcer = ParallelEnforcer(database, cost_model)
        self.auxiliaries = dict(auxiliaries or {})

    def bind_auxiliary(self, name: str, relation: FragmentedRelation) -> None:
        """Register a fragmented differential (e.g. ``fk@plus``)."""
        self.auxiliaries[name] = relation

    def _resolve(self, name: str) -> Union[str, FragmentedRelation]:
        if name in self.auxiliaries:
            return self.auxiliaries[name]
        if "@" in name:
            raise FragmentationError(
                f"auxiliary relation {name!r} is not bound; call "
                f"bind_auxiliary first"
            )
        return name

    # -- program-level entry points ------------------------------------------------

    def enforce_program(
        self, program: Program, strategy: Strategy = Strategy.AUTO
    ) -> List[EnforcementReport]:
        """Enforce every alarm statement of a translated program."""
        reports = []
        for statement in program:
            if isinstance(statement, Alarm):
                reports.append(self.enforce_alarm(statement, strategy))
            else:
                raise FragmentationError(
                    f"parallel enforcement supports alarm programs only, "
                    f"found {type(statement).__name__}"
                )
        return reports

    def enforce_alarm(
        self, alarm: Alarm, strategy: Strategy = Strategy.AUTO
    ) -> EnforcementReport:
        """Dispatch one alarm expression to the matching parallel check."""
        expr = alarm.expr
        if isinstance(expr, E.Select) and _named(expr.input) is not None:
            return self.enforcer.domain_check(
                self._resolve(_named(expr.input)), expr.predicate
            )
        if isinstance(expr, E.AntiJoin) and isinstance(expr.left, E.SemiJoin):
            # Delete-path differential: (R ⋉_θ ΔS⁻) ⊳_θ S.  Materialize
            # the affected referers with an exclusion check, then verify
            # them against the surviving targets.
            inner = expr.left
            if (
                _named(inner.left) is None
                or _named(inner.right) is None
                or _named(expr.right) is None
            ):
                raise FragmentationError(
                    "unsupported nested shape for parallel enforcement"
                )
            left_attr, right_attr = _equality_attributes(inner.predicate)
            affected = self._materialize_matches(
                self._resolve(_named(inner.left)),
                left_attr,
                self._resolve(_named(inner.right)),
                right_attr,
            )
            outer_left, outer_right = _equality_attributes(expr.predicate)
            return self.enforcer.referential_check(
                affected,
                outer_left,
                self._resolve(_named(expr.right)),
                outer_right,
                strategy,
            )
        if isinstance(expr, (E.AntiJoin, E.SemiJoin)):
            left_name = _named(expr.left)
            right_name = _named(expr.right)
            if left_name is None or right_name is None:
                raise FragmentationError(
                    "parallel enforcement requires plain relation operands "
                    "(run the differential optimizer first)"
                )
            left_attr, right_attr = _equality_attributes(expr.predicate)
            if isinstance(expr, E.AntiJoin):
                return self.enforcer.referential_check(
                    self._resolve(left_name),
                    left_attr,
                    self._resolve(right_name),
                    right_attr,
                    strategy,
                )
            return self.enforcer.exclusion_check(
                self._resolve(left_name),
                left_attr,
                self._resolve(right_name),
                right_attr,
                strategy,
            )
        raise FragmentationError(
            f"unsupported alarm shape for parallel enforcement: {expr!r}"
        )

    def _materialize_matches(
        self,
        left: Union[str, FragmentedRelation],
        left_attr,
        right: Union[str, FragmentedRelation],
        right_attr,
    ) -> FragmentedRelation:
        """Semijoin as a materialized fragmented relation (keeps the left
        relation's fragmentation scheme)."""
        left_rel = left if isinstance(left, FragmentedRelation) else (
            self.database.relation(left)
        )
        right_rel = right if isinstance(right, FragmentedRelation) else (
            self.database.relation(right)
        )
        right_position = right_rel.schema.position_of(right_attr) - 1
        keys = {
            row[right_position]
            for fragment in right_rel.fragments
            for row in fragment.rows()
        }
        left_position = left_rel.schema.position_of(left_attr) - 1
        result = FragmentedRelation(left_rel.schema, left_rel.scheme)
        for index, fragment in enumerate(left_rel.fragments):
            for row in fragment.rows():
                if row[left_position] in keys:
                    result.fragment(index).insert(row, _validated=True)
        return result


def _named(expr: E.Expression):
    """The resolvable name of a leaf operand: a plain relation reference or
    a first-class differential (``E.Delta``, resolved via its auxiliary
    name).  None for anything deeper."""
    if isinstance(expr, E.RelationRef):
        return expr.name
    if isinstance(expr, E.Delta):
        return expr.name
    return None


def _equality_attributes(predicate: P.Predicate):
    """Extract (left_attr, right_attr) from a single-equality θ."""
    if (
        isinstance(predicate, P.Comparison)
        and predicate.op == "="
        and isinstance(predicate.left, P.ColRef)
        and isinstance(predicate.right, P.ColRef)
    ):
        left, right = predicate.left, predicate.right
        if left.side == "left" and right.side == "right":
            return left.attr, right.attr
        if left.side == "right" and right.side == "left":
            return right.attr, left.attr
    raise FragmentationError(
        f"parallel join checks require a single attribute equality, "
        f"found {predicate!r}"
    )
