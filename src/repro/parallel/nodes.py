"""The simulated multi-node main-memory system (the POOMA stand-in).

A :class:`FragmentedDatabase` holds fragmented relations over ``n``
simulated nodes.  Per-node work is executed for real (the fragments are
ordinary :class:`~repro.engine.Relation` instances and operators run on
them), while :class:`NodeStats` accumulates the tuple and message counts
that the cost model converts into simulated wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.engine.database import Database
from repro.engine.relation import Relation
from repro.engine.schema import DatabaseSchema
from repro.errors import FragmentationError, UnknownRelationError
from repro.parallel.fragmentation import FragmentationScheme, FragmentedRelation


@dataclass
class NodeStats:
    """Per-node work counters for one enforcement run."""

    tuples_processed: int = 0
    tuples_sent: int = 0
    tuples_received: int = 0
    messages_sent: int = 0

    def merge(self, other: "NodeStats") -> None:
        self.tuples_processed += other.tuples_processed
        self.tuples_sent += other.tuples_sent
        self.tuples_received += other.tuples_received
        self.messages_sent += other.messages_sent


class FragmentedDatabase:
    """Fragmented relations spread over a set of simulated nodes."""

    def __init__(self, schema: DatabaseSchema, nodes: int):
        if nodes < 1:
            raise FragmentationError("node count must be >= 1")
        self.schema = schema
        self.nodes = nodes
        self._relations: Dict[str, FragmentedRelation] = {}

    # -- construction -------------------------------------------------------------

    def fragment_relation(
        self,
        name: str,
        scheme: FragmentationScheme,
        rows: Iterable[tuple] = (),
    ) -> FragmentedRelation:
        if scheme.fragments != self.nodes:
            raise FragmentationError(
                f"scheme has {scheme.fragments} fragments but the system has "
                f"{self.nodes} nodes"
            )
        relation_schema = self.schema.relation(name)
        fragmented = FragmentedRelation(relation_schema, scheme)
        fragmented.load(rows)
        self._relations[name] = fragmented
        return fragmented

    @classmethod
    def from_database(
        cls,
        database: Database,
        schemes: Dict[str, FragmentationScheme],
        nodes: int,
    ) -> "FragmentedDatabase":
        """Fragment an existing database under the given per-relation schemes."""
        fragmented = cls(database.schema, nodes)
        for name, scheme in schemes.items():
            fragmented.fragment_relation(
                name, scheme, database.relation(name).rows()
            )
        return fragmented

    # -- access ------------------------------------------------------------------

    def relation(self, name: str) -> FragmentedRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, "fragmented database") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> tuple:
        return tuple(self._relations)

    # -- data movement primitives (counted, then executed) --------------------------

    def broadcast(
        self, relation: FragmentedRelation, stats: Dict[int, NodeStats]
    ) -> Relation:
        """Ship every fragment to every node; returns the merged relation.

        Cost accounting: each node sends its fragment to the other n-1
        nodes (tuples_sent), and receives the n-1 foreign fragments.
        """
        merged = relation.merged()
        total = len(merged)
        for node in range(self.nodes):
            local = len(relation.fragment(node))
            stats[node].tuples_sent += local * (self.nodes - 1)
            stats[node].messages_sent += self.nodes - 1
            stats[node].tuples_received += total - local
        return merged

    def repartition(
        self,
        relation: FragmentedRelation,
        scheme: FragmentationScheme,
        stats: Dict[int, NodeStats],
    ) -> FragmentedRelation:
        """Re-fragment a relation under a new scheme, counting shipped rows."""
        if scheme.fragments != self.nodes:
            raise FragmentationError("repartition scheme/node count mismatch")
        result = FragmentedRelation(relation.schema, scheme)
        for source in range(self.nodes):
            sent = 0
            for row in relation.fragment(source).rows():
                target = scheme.fragment_of(row, relation.schema)
                result.fragment(target).insert(row, _validated=True)
                if target != source:
                    sent += 1
                    stats[target].tuples_received += 1
            stats[source].tuples_sent += sent
            if sent:
                stats[source].messages_sent += self.nodes - 1
        return result

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{rel.cardinality()}]" for name, rel in self._relations.items()
        )
        return f"FragmentedDatabase({self.nodes} nodes, {parts})"
