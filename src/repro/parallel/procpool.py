"""Real shared-nothing fragment workers for parallel enforcement.

:class:`~repro.parallel.enforcement.ParallelEnforcer` decides *placement*
— which operand fragments live where (LOCAL), which ship tuple-by-tuple to
their hash home (REPARTITION), and which replicate everywhere (BROADCAST).
Until now the decided movement was simulated: every "node" was a dict of
relations in the coordinator process.  This module makes the nodes real:

* a :class:`ProcessFragmentPool` starts one worker *process* per node;
* each worker **owns** its node's base-relation fragments, installed once
  (pickled over the worker's pipe) when an enforcer adopts the pool;
* per enforcement, only the *moved* operands cross process boundaries —
  serialized Δ batches for repartitioned/broadcast deltas, rehashed
  carrier fragments — exactly the shipments the placement decisions and
  ``tuples_shipped`` accounting already describe, now with measured bytes;
* the compiled violation plan executes on every node concurrently, and
  only violating rows travel back.

The coordinator serializes each payload exactly once (a broadcast reuses
one blob for all nodes), so reported ``bytes_shipped`` is the real pickle
cost of the movement, not an estimate.  Relations at or above
``columnar.WIRE_MIN_ROWS`` distinct rows ship as
:class:`~repro.algebra.columnar.ColumnBatch` payloads — per-attribute
typed arrays pickle substantially smaller than per-row tuple dicts —
and workers decode them back to relations on arrival.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Dict, List, Optional, Sequence

from repro.algebra.columnar import decode_relation, encode_relation
from repro.engine.relation import Relation
from repro.errors import FragmentationError

PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _fragment_worker(node: int, inbox, outbox) -> None:
    """One shared-nothing node: owned fragments + per-check bindings."""
    from repro.algebra import planner
    from repro.parallel.enforcement import _NodeContext

    owned: Dict[str, Relation] = {}
    bound: Dict[str, Relation] = {}
    while True:
        message = inbox.get()
        kind = message[0]
        if kind == "stop":
            break
        if kind == "install":
            # Lazy decode: fragments stay columnar until an operator needs
            # rows — scans and re-ships start straight from the columns.
            owned[message[1]] = decode_relation(
                pickle.loads(message[2]), lazy=True
            )
        elif kind == "bind":
            bound[message[1]] = decode_relation(
                pickle.loads(message[2]), lazy=True
            )
        elif kind == "clear":
            bound.clear()
        elif kind == "execute":
            request_id, blob = message[1], message[2]
            try:
                expression = pickle.loads(blob)
                context = _NodeContext({**owned, **bound})
                result = planner.get_plan(expression).execute(context)
                outbox.put((request_id, node, list(result.rows()), None))
            except BaseException as error:
                outbox.put(
                    (request_id, node, [], f"{type(error).__name__}: {error}")
                )


class ProcessFragmentPool:
    """A pool of worker processes, one per node, each owning a fragment.

    Lifecycle: create with the system's node count, hand to a
    :class:`~repro.parallel.enforcement.ParallelEnforcer` (which installs
    the base fragments it enforces over), run checks, :meth:`close`.
    The pool is enforcer-agnostic: it only knows named relations
    (installed = resident base fragments, bound = per-check shipped
    operands) and compiled expressions.
    """

    def __init__(self, nodes: int, start_method: Optional[str] = None):
        if nodes < 1:
            raise FragmentationError("node count must be >= 1")
        from repro.core.procpool import default_start_method

        self.nodes = nodes
        self.start_method = start_method or default_start_method()
        self._context = multiprocessing.get_context(self.start_method)
        self._outbox = self._context.Queue()
        self._inboxes = []
        self._workers = []
        for node in range(nodes):
            inbox = self._context.Queue()
            worker = self._context.Process(
                target=_fragment_worker,
                args=(node, inbox, self._outbox),
                name=f"repro-fragment-{node}",
                daemon=True,
            )
            worker.start()
            self._inboxes.append(inbox)
            self._workers.append(worker)
        self.installed: set = set()
        self.bytes_installed = 0
        self._next_request = 0
        self._closed = False

    # -- resident base fragments ------------------------------------------------

    def install(self, name: str, fragments: Sequence[Relation]) -> int:
        """Make ``fragments[i]`` resident on node ``i``; returns bytes sent."""
        if len(fragments) != self.nodes:
            raise FragmentationError(
                f"{len(fragments)} fragments for {self.nodes} nodes"
            )
        sent = 0
        for inbox, fragment in zip(self._inboxes, fragments):
            blob = pickle.dumps(
                encode_relation(fragment), protocol=PICKLE_PROTOCOL
            )
            inbox.put(("install", name, blob))
            sent += len(blob)
        self.installed.add(name)
        self.bytes_installed += sent
        return sent

    def ensure_database(self, database) -> int:
        """Install every not-yet-installed relation of a FragmentedDatabase."""
        if database.nodes != self.nodes:
            raise FragmentationError(
                f"pool has {self.nodes} nodes, database has {database.nodes}"
            )
        sent = 0
        for name in database.relation_names:
            if name not in self.installed:
                sent += self.install(name, database.relation(name).fragments)
        return sent

    # -- per-check operand shipment ---------------------------------------------

    def bind_fragments(self, name: str, fragments: Sequence[Relation]) -> int:
        """Ship ``fragments[i]`` to node ``i`` as a per-check binding."""
        sent = 0
        for inbox, fragment in zip(self._inboxes, fragments):
            blob = pickle.dumps(
                encode_relation(fragment), protocol=PICKLE_PROTOCOL
            )
            inbox.put(("bind", name, blob))
            sent += len(blob)
        return sent

    def broadcast_bind(self, name: str, relation: Relation) -> int:
        """Replicate one relation to every node (one blob, n shipments)."""
        blob = pickle.dumps(encode_relation(relation), protocol=PICKLE_PROTOCOL)
        for inbox in self._inboxes:
            inbox.put(("bind", name, blob))
        return len(blob) * self.nodes

    def clear_bindings(self) -> None:
        for inbox in self._inboxes:
            inbox.put(("clear",))

    # -- execution ---------------------------------------------------------------

    def execute(self, expression) -> List[List[tuple]]:
        """Run the compiled expression on every node; rows per node index.

        The execute message fans out to all workers before any reply is
        collected, so the per-node plans genuinely run concurrently.
        """
        request_id = self._next_request
        self._next_request += 1
        blob = pickle.dumps(expression, protocol=PICKLE_PROTOCOL)
        for inbox in self._inboxes:
            inbox.put(("execute", request_id, blob))
        rows: List[Optional[List[tuple]]] = [None] * self.nodes
        errors: List[str] = []
        collected = 0
        while collected < self.nodes:
            reply_id, node, node_rows, error = self._outbox.get()
            if reply_id != request_id:  # stale reply from an abandoned run
                continue
            rows[node] = node_rows
            if error is not None:
                errors.append(f"node {node}: {error}")
            collected += 1
        if errors:
            raise FragmentationError(
                "parallel enforcement failed on "
                + "; ".join(sorted(errors))
            )
        return [node_rows if node_rows else [] for node_rows in rows]

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for inbox, worker in zip(self._inboxes, self._workers):
            if worker.is_alive():
                try:
                    inbox.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover - race
                    pass
        for worker in self._workers:
            worker.join(timeout=10.0)
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=1.0)

    def __enter__(self) -> "ProcessFragmentPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:
        alive = sum(1 for w in self._workers if w.is_alive())
        return (
            f"ProcessFragmentPool({alive}/{self.nodes} workers alive, "
            f"{self.start_method}, {len(self.installed)} resident relations)"
        )
