"""Runtime statistics feeding the planner's cost estimates.

PR 1 priced plans with fixed textbook selectivities and a default relation
cardinality.  This module closes that loop: a :class:`RuntimeStatistics`
snapshot captures the *observed* state of a database — per-relation tuple
counts plus the distinct-key counts of every built hash index — and plugs
into :meth:`repro.algebra.physical.PhysicalOperator.estimate` wherever a
plain ``{name: cardinality}`` mapping was accepted before (the snapshot is
mapping-compatible via :meth:`RuntimeStatistics.get`).

Distinct-key counts turn the magic ``EQUALITY_SELECTIVITY`` constant into
the classic ``|R| / V(R, a)`` estimate for equality selections and
``|L| · |R| / max(V(L, a), V(R, b))`` for equi-joins.

The write path feeds back too: every committed transaction records its net
differential sizes into the database's
:class:`~repro.engine.database.DeltaObservations`, and snapshots expose the
per-relation EWMA under the auxiliary names (``"R@plus"``/``"R@minus"``) so
delta-plan scans price from the observed |Δ| distribution instead of
:data:`repro.algebra.physical.DEFAULT_DELTA_CARDINALITY`.

Snapshots are cheap (one ``len`` per relation, one per built index), so the
planner re-captures them freely; :meth:`drifted` is the cache-invalidation
predicate — an estimate computed under an old snapshot is reused until some
observed cardinality drifts past a threshold factor.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Default drift factor: a cached estimate survives until some relation's
#: cardinality grows or shrinks past this multiple of the captured value.
DRIFT_THRESHOLD = 2.0

#: Pseudo-count guarding the drift ratio against empty relations.
_SMOOTHING = 8.0


class RuntimeStatistics:
    """A point-in-time statistics snapshot of one database state.

    ``cardinalities`` maps relation names to tuple counts; ``distinct`` maps
    ``(relation, attribute-names)`` pairs to the number of distinct keys the
    corresponding built hash index currently holds; ``delta_sizes`` maps
    auxiliary differential names (``"R@plus"`` / ``"R@minus"``) to the
    EWMA |Δ| observed over committed transactions
    (:class:`repro.engine.database.DeltaObservations`) — what lets
    :class:`~repro.algebra.physical.DeltaScanOp` price delta plans from the
    workload's actual write sizes instead of a fixed default.
    """

    __slots__ = ("cardinalities", "distinct", "delta_sizes", "logical_time")

    def __init__(
        self,
        cardinalities: Optional[Dict[str, float]] = None,
        distinct: Optional[Dict[Tuple[str, tuple], int]] = None,
        logical_time: int = 0,
        delta_sizes: Optional[Dict[str, float]] = None,
    ):
        self.cardinalities = dict(cardinalities or {})
        self.distinct = dict(distinct or {})
        self.delta_sizes = dict(delta_sizes or {})
        self.logical_time = logical_time

    @classmethod
    def capture(cls, database) -> "RuntimeStatistics":
        """Snapshot a :class:`~repro.engine.database.Database`."""
        cardinalities: Dict[str, float] = {}
        distinct: Dict[Tuple[str, tuple], int] = {}
        for relation in database:
            name = relation.schema.name
            cardinalities[name] = float(len(relation))
            indexes = relation.indexes
            if indexes is None:
                continue
            for index in indexes:
                if not index.built:
                    continue
                attrs = tuple(
                    relation.schema.attributes[position].name
                    for position in index.positions
                )
                distinct[(name, attrs)] = index.distinct_keys
        delta_stats = getattr(database, "delta_stats", None)
        delta_sizes = dict(delta_stats.sizes) if delta_stats is not None else {}
        return cls(
            cardinalities,
            distinct,
            logical_time=database.logical_time,
            delta_sizes=delta_sizes,
        )

    # -- mapping compatibility (what ``estimate(cards)`` consumes) ----------

    def get(self, name: str, default=None):
        value = self.cardinalities.get(name)
        if value is not None:
            return value
        value = self.delta_sizes.get(name)
        if value is not None:
            return value
        return default

    def __contains__(self, name: str) -> bool:
        return name in self.cardinalities or name in self.delta_sizes

    def distinct_keys(self, name: str, attrs) -> Optional[int]:
        """Distinct key count of the built index on ``(name, attrs)``."""
        if attrs is None:
            return None
        return self.distinct.get((name, tuple(attrs)))

    # -- drift ---------------------------------------------------------------

    def drift(self, other: "RuntimeStatistics") -> float:
        """How far apart two snapshots are, as a ratio (always >= 1.0).

        The largest per-relation cardinality ratio and per-index
        distinct-key ratio; a built index appearing or disappearing between
        snapshots is infinite drift (estimates computed without the index's
        selectivity information are structurally stale, not just scaled).
        Smoothing keeps empty/new relations from producing infinite ratios.
        """
        if set(self.distinct) != set(other.distinct):
            return float("inf")
        worst = 1.0
        for name in set(self.cardinalities) | set(other.cardinalities):
            mine = self.cardinalities.get(name, 0.0) + _SMOOTHING
            theirs = other.cardinalities.get(name, 0.0) + _SMOOTHING
            ratio = mine / theirs if mine > theirs else theirs / mine
            if ratio > worst:
                worst = ratio
        for key, mine in self.distinct.items():
            theirs = other.distinct[key]
            mine += _SMOOTHING
            theirs += _SMOOTHING
            ratio = mine / theirs if mine > theirs else theirs / mine
            if ratio > worst:
                worst = ratio
        # Observed delta sizes drift like cardinalities (smoothed, so a
        # delta name appearing with a small EWMA does not read as infinite).
        for name in set(self.delta_sizes) | set(other.delta_sizes):
            mine = self.delta_sizes.get(name, 0.0) + _SMOOTHING
            theirs = other.delta_sizes.get(name, 0.0) + _SMOOTHING
            ratio = mine / theirs if mine > theirs else theirs / mine
            if ratio > worst:
                worst = ratio
        return worst

    def drifted(
        self, other: "RuntimeStatistics", threshold: float = DRIFT_THRESHOLD
    ) -> bool:
        """True when estimates computed under ``self`` are stale for ``other``."""
        return self.drift(other) > threshold

    def __repr__(self) -> str:
        return (
            f"RuntimeStatistics({len(self.cardinalities)} relations, "
            f"{len(self.distinct)} indexed keys, "
            f"{len(self.delta_sizes)} delta sizes, t={self.logical_time})"
        )
