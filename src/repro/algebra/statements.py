"""Statements of the extended relational algebra (paper Def 2.4, Def 5.1).

Statements are what makes the algebra *extended*: they specify actions
against the database rather than values.  The statement set is exactly the
paper's: assignment, insert, delete, update — plus the ``alarm`` statement
(Def 5.1) that aborts the enclosing transaction when its argument is
non-empty, and the unconditional ``abort`` used by aborting violation
response actions ("THEN abort" in RL).

Every statement implements:

``execute(context)``
    run against a :class:`~repro.engine.transaction.TransactionContext`;
``update_triggers()``
    the elementary update types it performs, as ``(kind, relation)`` pairs
    with kind in ``{"INS", "DEL"}`` — this is the paper's ``GetTrigS``
    (Alg 5.2): an update counts as a delete plus an insert (Def 4.5);
``relations_read()``
    names of relations whose contents the statement reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union as TypingUnion

from repro.algebra import predicates as P
from repro.algebra.evaluation import evaluate_expression
from repro.algebra.expressions import Expression, Select, RelationRef
from repro.errors import TransactionAborted

INS = "INS"
DEL = "DEL"


class Statement:
    """Base class for extended relational algebra statements."""

    __slots__ = ()

    def execute(self, context) -> None:
        raise NotImplementedError

    def update_triggers(self) -> frozenset:
        """The paper's GetTrigS: elementary update types of this statement."""
        return frozenset()

    def relations_read(self) -> set:
        return set()


@dataclass(frozen=True)
class Assign(Statement):
    """``name := E`` — bind a temporary relation (dropped at commit)."""

    name: str
    expr: Expression

    def execute(self, context) -> None:
        from repro.algebra.expressions import Rename

        value = evaluate_expression(Rename(self.expr, self.name), context)
        context.set_temp(self.name, value)

    def relations_read(self) -> set:
        return self.expr.relations()


@dataclass(frozen=True)
class Insert(Statement):
    """``insert(R, E)`` — add the tuples of E to base relation R."""

    relation: str
    expr: Expression

    def execute(self, context) -> None:
        rows = list(evaluate_expression(self.expr, context))
        context.insert_rows(self.relation, rows)

    def update_triggers(self) -> frozenset:
        return frozenset({(INS, self.relation)})

    def relations_read(self) -> set:
        return self.expr.relations()


@dataclass(frozen=True)
class Delete(Statement):
    """``delete(R, E)`` — remove the tuples of E from base relation R."""

    relation: str
    expr: Expression

    def execute(self, context) -> None:
        rows = list(evaluate_expression(self.expr, context))
        context.delete_rows(self.relation, rows)

    def update_triggers(self) -> frozenset:
        return frozenset({(DEL, self.relation)})

    def relations_read(self) -> set:
        return self.expr.relations()


@dataclass(frozen=True)
class Update(Statement):
    """``update(R, pred, attr := e, ...)`` — transform matching tuples.

    Executed, per Def 4.5, as a delete of the matching tuples followed by an
    insert of their transformed versions; both differentials are maintained
    and the trigger set is ``{INS(R), DEL(R)}``.
    """

    relation: str
    predicate: P.Predicate
    assignments: Tuple[Tuple[TypingUnion[int, str], P.ScalarExpr], ...]

    def execute(self, context) -> None:
        source = context.resolve(self.relation)
        schema = source.schema
        matching = list(
            evaluate_expression(
                Select(RelationRef(self.relation), self.predicate), context
            )
        )
        positions = [
            schema.position_of(attr) - 1 for attr, _ in self.assignments
        ]
        compiled = [
            P.compile_scalar(expr, schema) for _, expr in self.assignments
        ]
        replacements = []
        for row in matching:
            new_row = list(row)
            for position, fn in zip(positions, compiled):
                new_row[position] = fn(row)
            replacements.append(tuple(new_row))
        context.delete_rows(self.relation, matching)
        context.insert_rows(self.relation, replacements)

    def update_triggers(self) -> frozenset:
        return frozenset({(INS, self.relation), (DEL, self.relation)})

    def relations_read(self) -> set:
        return {self.relation}


@dataclass(frozen=True)
class Alarm(Statement):
    """``alarm(E)`` — abort the transaction when E is non-empty (Def 5.1).

    The optional message names the violated constraint, making abort reasons
    actionable; the paper's definition is the unlabelled special case.
    """

    expr: Expression
    message: Optional[str] = None

    def execute(self, context) -> None:
        result = evaluate_expression(self.expr, context)
        if len(result) > 0:
            reason = self.message or "integrity alarm"
            sample = result.sorted_rows()[:3]
            raise TransactionAborted(
                f"{reason} ({len(result)} violating tuple(s), e.g. {sample})"
            )

    def relations_read(self) -> set:
        return self.expr.relations()


@dataclass(frozen=True)
class Abort(Statement):
    """Unconditional abort — the default violation response."""

    message: Optional[str] = None

    def execute(self, context) -> None:
        raise TransactionAborted(self.message or "explicit abort")


def statement_update_triggers(statements) -> frozenset:
    """GetTrigP over a sequence of statements (Alg 5.2).

    The union of the elementary update types of all statements.
    """
    triggers: set = set()
    for statement in statements:
        triggers |= statement.update_triggers()
    return frozenset(triggers)
