"""The general delta-rewrite transform: incrementalize any algebra expression.

Differential enforcement (Simon & Valduriez [18]; Grefen & Apers [7]) pays
off because checking touches only what a transaction changed.  Until this
module, the repro incrementalized a *pattern table* of eight alarm shapes;
everything else fell back to full re-evaluation.  Here the rewrite is what
the literature says it is — a recursive transform over the whole algebra
(Qian & Wiederhold-style finite differencing; cf. Griffin & Libkin's
incremental view maintenance rules).

For an expression ``e`` let ``e`` (as written) denote its value in the
*post*-transaction state, ``old(e)`` its value in the *pre*-transaction
state, and let the transaction's net leaf differentials be
``ΔR⁺ = R@plus`` and ``ΔR⁻ = R@minus``.  The transform computes *sandwich
bounds* rather than exact differences:

* ``delta_plus(e)``  satisfies  ``e − old(e)  ⊆  Δ⁺e  ⊆  e``;
* ``delta_minus(e)`` satisfies  ``old(e) − e  ⊆  Δ⁻e``  and  ``Δ⁻e ∩ e = ∅``.

These invariants are exactly what differential *checking* needs: a
translated violation expression ``V`` with ``old(V) = ∅`` (the paper's
Def 3.5 pre-state-correctness assumption) has ``V ≠ ∅  iff  Δ⁺V ≠ ∅`` — and
``Δ⁺V = V`` as a set, so even the violating-tuple sets agree.  Dropping the
difference-correction terms an exact derivative would need keeps the
rewritten plans free of full-relation subtractions.

Rules (⊳ = antijoin, ⋉ = semijoin; ``old(e)`` rewrites every base ``R`` to
``R@old`` but is the identity on subtrees the transaction did not touch)::

    Δ⁺R          = R@plus                    Δ⁻R          = R@minus
    Δ⁺σ_p(e)     = σ_p(Δ⁺e)                  Δ⁻σ_p(e)     = σ_p(Δ⁻e)
    Δ⁺π(e)       = π(Δ⁺e)                    Δ⁻π(e)       = π(Δ⁻e) − π(e)
    Δ⁺(l ∪ r)    = Δ⁺l ∪ Δ⁺r                 Δ⁻(l ∪ r)    = (Δ⁻l ∪ Δ⁻r) − (l ∪ r)
    Δ⁺(l − r)    = (Δ⁺l − r) ∪ (l ∩ Δ⁻r)     Δ⁻(l − r)    = (Δ⁻l − old(r)) ∪ (old(l) ∩ Δ⁺r)
    Δ⁺(l ∩ r)    = (Δ⁺l ∩ r) ∪ (l ∩ Δ⁺r)     Δ⁻(l ∩ r)    = (Δ⁻l ∩ old(r)) ∪ (old(l) ∩ Δ⁻r)
    Δ⁺(l ⋈ r)    = (Δ⁺l ⋈ r) ∪ (l ⋈ Δ⁺r)     Δ⁻(l ⋈ r)    = (Δ⁻l ⋈ old(r)) ∪ (old(l) ⋈ Δ⁻r)
    Δ⁺(l ⋉ r)    = (Δ⁺l ⋉ r) ∪ (l ⋉ Δ⁺r)     Δ⁻(l ⋉ r)    = (Δ⁻l ⋉ old(r)) ∪ ((old(l) ⋉ Δ⁻r) ⊳ r)
    Δ⁺(l ⊳ r)    = (Δ⁺l ⊳ r) ∪ ((l ⋉ Δ⁻r) ⊳ r)
    Δ⁻(l ⊳ r)    = (Δ⁻l ⊳ old(r)) ∪ ((old(l) ⋉ Δ⁺r) ⊳ old(r))

(Products follow the join rules with a true predicate; renames commute with
both deltas.)  Each rule is *linear*: every union term carries exactly one
leaf delta, so restricting the active leaf deltas to a single trigger
specification ``U(R)`` yields that trigger's differential program, and the
union over a transaction's matched triggers recovers the full delta.

**Vacuity is emptiness propagation.**  The transform represents a provably
empty subexpression as ``None`` and simplifies on the way up (``σ_p(∅) = ∅``,
``∅ ∪ e = e``, ``∅ ⋈ e = ∅`` ...), so "deleting referers is safe", "adding
targets is safe", and every other row of the old pattern table fall out of
the algebra instead of being enumerated — including for triggers on
relations the expression never mentions.

**Honest failure.**  Aggregates (``SUM``/``CNT``/``MLT`` and friends) over a
*changed* input, and expressions over auxiliary relations (transition
constraints), are not incrementalizable by these rules;
:func:`delta_expression` raises :class:`NotIncrementalizable` and the caller
keeps the full-state program.  Aggregates over untouched inputs simplify to
empty like any other unaffected subtree.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.algebra import expressions as E
from repro.algebra.statements import DEL, INS
from repro.engine import naming

#: trigger kind activating a plus leaf / minus leaf, by delta sign.
_KIND_FOR_SIGN = {E.DELTA_PLUS: INS, E.DELTA_MINUS: DEL}


class NotIncrementalizable(Exception):
    """The expression contains an operator the delta rules cannot handle."""


def delta_expression(
    expr: E.Expression,
    triggers,
    kind: str = E.DELTA_PLUS,
) -> Optional[E.Expression]:
    """The ``kind`` delta of ``expr`` with exactly ``triggers`` active.

    ``triggers`` is an iterable of trigger specifications ``(U, R)`` with
    ``U in {INS, DEL}``: an ``INS(R)`` spec makes the leaf delta ``R@plus``
    available (non-empty), ``DEL(R)`` makes ``R@minus`` available; every
    other leaf delta is treated as empty.  Returns the rewritten expression,
    or ``None`` when the delta is provably empty — the *vacuous* case, where
    the triggers cannot change the expression's value at all.

    Raises :class:`NotIncrementalizable` when ``expr`` contains an
    aggregate/counting operator over an affected input, a cartesian-style
    node the rules cannot bound, or a reference to an auxiliary relation
    (transition constraints are outside the pre-state/delta algebra).
    """
    active = frozenset(triggers)
    _check_auxiliary_free(expr)
    return _delta(expr, kind, active)


def old_expression(expr: E.Expression, triggers) -> E.Expression:
    """``expr`` evaluated in the pre-transaction state.

    Base relations an active trigger touches become ``R@old``; untouched
    subtrees are returned as-is (their pre- and post-state values coincide),
    which keeps delta plans bound to live, index-carrying relations wherever
    possible.
    """
    return _old(expr, frozenset(triggers))


# ---------------------------------------------------------------------------
# None-aware constructors (None = provably empty relation)
# ---------------------------------------------------------------------------


def _union(left: Optional[E.Expression], right: Optional[E.Expression]):
    if left is None:
        return right
    if right is None:
        return left
    return E.Union(left, right)


def _affected_relations(active: FrozenSet[Tuple[str, str]]) -> frozenset:
    return frozenset(relation for _, relation in active)


def _is_affected(expr: E.Expression, active: FrozenSet[tuple]) -> bool:
    return bool(expr.relations() & _affected_relations(active))


def _check_auxiliary_free(expr: E.Expression) -> None:
    for name in expr.relations():
        if naming.is_auxiliary(name):
            raise NotIncrementalizable(
                f"expression references auxiliary relation {name!r}; "
                f"transition state is outside the delta algebra"
            )


# ---------------------------------------------------------------------------
# The recursive transform
# ---------------------------------------------------------------------------


def _delta(
    expr: E.Expression, sign: str, active: FrozenSet[tuple]
) -> Optional[E.Expression]:
    # Uniform vacuity: a subtree over relations no active trigger touches
    # keeps its value, so its delta (either sign) is empty.  This covers
    # Literal leaves and aggregates over untouched inputs for free.
    if not _is_affected(expr, active):
        return None

    if isinstance(expr, E.RelationRef):
        if (_KIND_FOR_SIGN[sign], expr.name) in active:
            return E.Delta(expr.name, sign)
        return None

    if isinstance(expr, E.Select):
        child = _delta(expr.input, sign, active)
        return None if child is None else E.Select(child, expr.predicate)

    if isinstance(expr, E.Project):
        child = _delta(expr.input, sign, active)
        if child is None:
            return None
        projected = E.Project(child, expr.items)
        if sign == E.DELTA_PLUS:
            return projected
        # A projected row may survive via other source rows; subtract the
        # post-state projection to keep Δ⁻ disjoint from the new value.
        return E.Difference(projected, E.Project(expr.input, expr.items))

    if isinstance(expr, E.Rename):
        child = _delta(expr.input, sign, active)
        if child is None:
            return None
        return E.Rename(child, expr.name, expr.attributes)

    if isinstance(expr, E.Union):
        merged = _union(
            _delta(expr.left, sign, active), _delta(expr.right, sign, active)
        )
        if merged is None or sign == E.DELTA_PLUS:
            return merged
        # A row dropped from one branch may persist through the other.
        return E.Difference(merged, expr)

    if isinstance(expr, E.Difference):
        return _delta_difference(expr, sign, active)

    if isinstance(expr, E.Intersection):
        return _delta_intersection(expr, sign, active)

    if isinstance(expr, (E.Join, E.Product)):
        return _delta_join(expr, sign, active)

    if isinstance(expr, E.SemiJoin):
        return _delta_semijoin(expr, sign, active)

    if isinstance(expr, E.AntiJoin):
        return _delta_antijoin(expr, sign, active)

    raise NotIncrementalizable(
        f"no delta rule for {type(expr).__name__} over a changed input"
    )


def _delta_difference(expr: E.Difference, sign, active):
    if sign == E.DELTA_PLUS:
        plus_left = _delta(expr.left, E.DELTA_PLUS, active)
        minus_right = _delta(expr.right, E.DELTA_MINUS, active)
        grown = None if plus_left is None else E.Difference(plus_left, expr.right)
        # Rows of the (new) left side whose blocker was deleted: Δ⁻r is
        # disjoint from the new right side by invariant, so the
        # intersection lands outside r and inside l − r.
        unblocked = (
            None if minus_right is None else E.Intersection(expr.left, minus_right)
        )
        return _union(grown, unblocked)
    minus_left = _delta(expr.left, E.DELTA_MINUS, active)
    plus_right = _delta(expr.right, E.DELTA_PLUS, active)
    shrunk = (
        None
        if minus_left is None
        else E.Difference(minus_left, _old(expr.right, active))
    )
    blocked = (
        None
        if plus_right is None
        else E.Intersection(_old(expr.left, active), plus_right)
    )
    return _union(shrunk, blocked)


def _delta_intersection(expr: E.Intersection, sign, active):
    if sign == E.DELTA_PLUS:
        left_term = _delta(expr.left, sign, active)
        right_term = _delta(expr.right, sign, active)
        return _union(
            None if left_term is None else E.Intersection(left_term, expr.right),
            None if right_term is None else E.Intersection(expr.left, right_term),
        )
    left_term = _delta(expr.left, sign, active)
    right_term = _delta(expr.right, sign, active)
    return _union(
        None
        if left_term is None
        else E.Intersection(left_term, _old(expr.right, active)),
        None
        if right_term is None
        else E.Intersection(_old(expr.left, active), right_term),
    )


def _join_like(expr, left, right):
    if isinstance(expr, E.Product):
        return E.Product(left, right)
    return E.Join(left, right, expr.predicate)


def _delta_join(expr, sign, active):
    left_term = _delta(expr.left, sign, active)
    right_term = _delta(expr.right, sign, active)
    if sign == E.DELTA_PLUS:
        return _union(
            None if left_term is None else _join_like(expr, left_term, expr.right),
            None if right_term is None else _join_like(expr, expr.left, right_term),
        )
    return _union(
        None
        if left_term is None
        else _join_like(expr, left_term, _old(expr.right, active)),
        None
        if right_term is None
        else _join_like(expr, _old(expr.left, active), right_term),
    )


def _delta_semijoin(expr: E.SemiJoin, sign, active):
    pred = expr.predicate
    if sign == E.DELTA_PLUS:
        plus_left = _delta(expr.left, E.DELTA_PLUS, active)
        plus_right = _delta(expr.right, E.DELTA_PLUS, active)
        return _union(
            None if plus_left is None else E.SemiJoin(plus_left, expr.right, pred),
            # Old left rows whose *first* witness just arrived: any row
            # matching a Δ⁺ witness matches the new right side, so the term
            # stays inside the post-state semijoin.
            None if plus_right is None else E.SemiJoin(expr.left, plus_right, pred),
        )
    minus_left = _delta(expr.left, E.DELTA_MINUS, active)
    minus_right = _delta(expr.right, E.DELTA_MINUS, active)
    first = (
        None
        if minus_left is None
        else E.SemiJoin(minus_left, _old(expr.right, active), pred)
    )
    # Rows whose witnesses were deleted — but only those with no surviving
    # witness (the trailing antijoin keeps Δ⁻ disjoint from the new value).
    second = (
        None
        if minus_right is None
        else E.AntiJoin(
            E.SemiJoin(_old(expr.left, active), minus_right, pred),
            expr.right,
            pred,
        )
    )
    return _union(first, second)


def _delta_antijoin(expr: E.AntiJoin, sign, active):
    pred = expr.predicate
    if sign == E.DELTA_PLUS:
        plus_left = _delta(expr.left, E.DELTA_PLUS, active)
        minus_right = _delta(expr.right, E.DELTA_MINUS, active)
        first = (
            None if plus_left is None else E.AntiJoin(plus_left, expr.right, pred)
        )
        # Left rows that lost a blocker: restrict to rows matching a deleted
        # right tuple, then re-check against the surviving right side.  This
        # is the classical "referers of deleted targets" form.
        second = (
            None
            if minus_right is None
            else E.AntiJoin(
                E.SemiJoin(expr.left, minus_right, pred), expr.right, pred
            )
        )
        return _union(first, second)
    minus_left = _delta(expr.left, E.DELTA_MINUS, active)
    plus_right = _delta(expr.right, E.DELTA_PLUS, active)
    first = (
        None
        if minus_left is None
        else E.AntiJoin(minus_left, _old(expr.right, active), pred)
    )
    second = (
        None
        if plus_right is None
        else E.AntiJoin(
            E.SemiJoin(_old(expr.left, active), plus_right, pred),
            _old(expr.right, active),
            pred,
        )
    )
    return _union(first, second)


# ---------------------------------------------------------------------------
# Pre-state rewriting
# ---------------------------------------------------------------------------


def _old(expr: E.Expression, active: FrozenSet[tuple]) -> E.Expression:
    if not _is_affected(expr, active):
        return expr
    if isinstance(expr, E.RelationRef):
        return E.RelationRef(naming.old_name(expr.name))
    if isinstance(expr, E.Select):
        return E.Select(_old(expr.input, active), expr.predicate)
    if isinstance(expr, E.Project):
        return E.Project(_old(expr.input, active), expr.items)
    if isinstance(expr, E.Rename):
        return E.Rename(_old(expr.input, active), expr.name, expr.attributes)
    if isinstance(expr, E.Aggregate):
        return E.Aggregate(_old(expr.input, active), expr.func, expr.attr)
    if isinstance(expr, E.Count):
        return E.Count(_old(expr.input, active))
    if isinstance(expr, E.Multiplicity):
        return E.Multiplicity(_old(expr.input, active))
    if isinstance(expr, E.Product):
        return E.Product(_old(expr.left, active), _old(expr.right, active))
    if isinstance(expr, (E.Union, E.Difference, E.Intersection)):
        ctor = type(expr)
        return ctor(_old(expr.left, active), _old(expr.right, active))
    if isinstance(expr, (E.Join, E.SemiJoin, E.AntiJoin)):
        ctor = type(expr)
        return ctor(
            _old(expr.left, active), _old(expr.right, active), expr.predicate
        )
    raise NotIncrementalizable(
        f"cannot rewrite {type(expr).__name__} to its pre-state form"
    )
