"""Evaluation entry points and contexts for algebra expressions.

An evaluation *context* is any object with ``resolve(name) -> Relation``;
:class:`~repro.engine.transaction.TransactionContext` is the production
context.  :class:`StandaloneContext` evaluates expressions over an ad-hoc
dictionary of relations (unit tests, the rule optimizer's what-if analyses),
and :class:`TracingContext` wraps another context to collect per-operator
tuple counts for the parallel cost model.

Evaluation itself is dispatched through :mod:`repro.algebra.planner`: by
default expressions compile to cached physical plans; a context (or caller)
may select the reference tree-walk interpreter with ``engine="naive"``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.algebra import planner
from repro.algebra.expressions import Expression
from repro.engine.relation import Relation
from repro.errors import UnknownRelationError


class StandaloneContext:
    """Resolve names against a plain mapping of relations."""

    def __init__(self, relations: Mapping, engine: Optional[str] = None):
        self._relations = dict(relations)
        self.engine = engine

    def resolve(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, "standalone context") from None

    def bind(self, name: str, relation: Relation) -> None:
        self._relations[name] = relation


class OperatorTrace:
    """Accumulated per-operator tuple counts."""

    def __init__(self):
        self.records: list = []

    def record(self, op: str, tuples_in: int, tuples_out: int) -> None:
        self.records.append((op, tuples_in, tuples_out))

    @property
    def total_tuples_in(self) -> int:
        return sum(tuples_in for _, tuples_in, _ in self.records)

    @property
    def total_tuples_out(self) -> int:
        return sum(tuples_out for _, _, tuples_out in self.records)

    def by_operator(self) -> dict:
        summary: dict = {}
        for op, tuples_in, tuples_out in self.records:
            calls, acc_in, acc_out = summary.get(op, (0, 0, 0))
            summary[op] = (calls + 1, acc_in + tuples_in, acc_out + tuples_out)
        return summary

    def __repr__(self) -> str:
        return f"OperatorTrace({len(self.records)} operator calls)"


class TracingContext:
    """Wrap a context so operator counts are recorded during evaluation."""

    def __init__(self, inner):
        self.inner = inner
        self.tracer = OperatorTrace()

    @property
    def engine(self) -> Optional[str]:
        return getattr(self.inner, "engine", None)

    def resolve(self, name: str) -> Relation:
        return self.inner.resolve(name)


def evaluate_expression(
    expression: Expression, context, engine: Optional[str] = None
) -> Relation:
    """Evaluate a relation-valued expression in the given context.

    The backend is picked by :func:`repro.algebra.planner.resolve_engine`:
    the ``engine`` argument wins, then the context's ``engine`` attribute,
    then the planner's process-wide default ("planned").
    """
    return planner.evaluate(expression, context, engine=engine)
