"""Text forms for algebra expressions, programs, and transactions.

This is the concrete syntax used by examples, tests, the RL rule language's
``THEN`` clauses, and the session facade.  It is a functional notation (the
paper's blackboard symbols ``σ π ⋈ ⋉`` rendered as keywords):

.. code-block:: text

    begin
        insert(beer, ("exportgold", "stout", "guineken", 6));
        temp := diff(project(beer, [brewery]), project(brewery, [name]));
        insert(brewery, project(temp, [brewery as name, null, null]));
        alarm(select(beer, alcohol < 0));
    end

Expression grammar (keywords are case-insensitive):

.. code-block:: text

    rexpr    := select(rexpr, pred) | project(rexpr, [item, ...])
              | union(rexpr, rexpr) | diff(rexpr, rexpr)
              | intersect(rexpr, rexpr) | product(rexpr, rexpr)
              | join(rexpr, rexpr, pred) | semijoin(rexpr, rexpr, pred)
              | antijoin(rexpr, rexpr, pred)
              | sum(rexpr, attr) | avg(rexpr, attr) | min(rexpr, attr)
              | max(rexpr, attr) | cnt(rexpr) | mlt(rexpr)
              | rename(rexpr, name [, [name, ...]])
              | { (v, ...), ... } | NAME
    item     := scalar [as NAME]
    pred     := disjunction over and/not/comparisons; true | false
    scalar   := arithmetic over constants, attr names, left.attr, right.attr,
                positional left.2 / right.3, null

Statements: ``NAME := rexpr``, ``insert(R, E|tuple|{tuples})``,
``delete(R, E|tuple|{tuples}|where pred)``, ``update(R, pred, a := e, ...)``,
``alarm(E [, "message"])``, ``abort ["message"]``.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import predicates as P
from repro.algebra import expressions as E
from repro.algebra import statements as S
from repro.algebra.programs import Program, bracket
from repro.engine.transaction import Transaction
from repro.engine.types import NULL
from repro.errors import ParseError
from repro.lex import TokenStream

_BINARY_OPS = {
    "union": E.Union,
    "diff": E.Difference,
    "intersect": E.Intersection,
    "product": E.Product,
}
_JOIN_OPS = {
    "join": E.Join,
    "semijoin": E.SemiJoin,
    "antijoin": E.AntiJoin,
}
_AGG_NAMES = ("sum", "avg", "min", "max")

_RESERVED = frozenset(
    [
        "select",
        "project",
        "union",
        "diff",
        "intersect",
        "product",
        "join",
        "semijoin",
        "antijoin",
        "sum",
        "avg",
        "min",
        "max",
        "cnt",
        "mlt",
        "rename",
        "insert",
        "delete",
        "update",
        "alarm",
        "abort",
        "begin",
        "end",
        "where",
        "as",
        "and",
        "or",
        "not",
        "true",
        "false",
        "null",
        "isnull",
        "left",
        "right",
    ]
)


class _Parser:
    def __init__(self, text: str):
        self.stream = TokenStream(text)

    # -- expressions ------------------------------------------------------------

    def expression(self) -> E.Expression:
        stream = self.stream
        if stream.at("OP", "{"):
            return self.set_literal()
        token = stream.current
        if token.kind != "NAME":
            raise ParseError(
                f"expected an expression at position {token.position}, "
                f"found {token.text!r}"
            )
        keyword = token.value.lower()
        if keyword == "select":
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ",")
            predicate = self.predicate()
            stream.expect("OP", ")")
            return E.Select(source, predicate)
        if keyword == "project":
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ",")
            stream.expect("OP", "[")
            items = [self.project_item()]
            while stream.accept("OP", ","):
                items.append(self.project_item())
            stream.expect("OP", "]")
            stream.expect("OP", ")")
            return E.Project(source, tuple(items))
        if keyword in _BINARY_OPS:
            stream.advance()
            stream.expect("OP", "(")
            left = self.expression()
            stream.expect("OP", ",")
            right = self.expression()
            stream.expect("OP", ")")
            return _BINARY_OPS[keyword](left, right)
        if keyword in _JOIN_OPS:
            stream.advance()
            stream.expect("OP", "(")
            left = self.expression()
            stream.expect("OP", ",")
            right = self.expression()
            stream.expect("OP", ",")
            predicate = self.predicate()
            stream.expect("OP", ")")
            return _JOIN_OPS[keyword](left, right, predicate)
        if keyword in _AGG_NAMES:
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ",")
            attr = self.attribute_ref()
            stream.expect("OP", ")")
            return E.Aggregate(source, keyword.upper(), attr)
        if keyword == "cnt":
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ")")
            return E.Count(source)
        if keyword == "mlt":
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ")")
            return E.Multiplicity(source)
        if keyword == "rename":
            stream.advance()
            stream.expect("OP", "(")
            source = self.expression()
            stream.expect("OP", ",")
            new_name = stream.expect("NAME").value
            attrs = None
            if stream.accept("OP", ","):
                stream.expect("OP", "[")
                names = [stream.expect("NAME").value]
                while stream.accept("OP", ","):
                    names.append(stream.expect("NAME").value)
                stream.expect("OP", "]")
                attrs = tuple(names)
            stream.expect("OP", ")")
            return E.Rename(source, new_name, attrs)
        if keyword in _RESERVED:
            raise ParseError(
                f"reserved word {token.value!r} cannot be a relation name "
                f"(position {token.position})"
            )
        stream.advance()
        return E.RelationRef(token.value)

    def project_item(self) -> E.ProjectItem:
        expr = self.scalar()
        name = None
        if self.stream.accept_name("as"):
            name = self.stream.expect("NAME").value
        return E.ProjectItem(expr, name)

    def set_literal(self) -> E.Literal:
        stream = self.stream
        stream.expect("OP", "{")
        rows = []
        if not stream.at("OP", "}"):
            rows.append(self.tuple_literal())
            while stream.accept("OP", ","):
                rows.append(self.tuple_literal())
        stream.expect("OP", "}")
        return E.Literal(tuple(rows))

    def tuple_literal(self) -> tuple:
        stream = self.stream
        stream.expect("OP", "(")
        values = [self.constant()]
        while stream.accept("OP", ","):
            if stream.at("OP", ")"):
                break  # Python-style trailing comma: (1,)
            values.append(self.constant())
        stream.expect("OP", ")")
        return tuple(values)

    def constant(self):
        stream = self.stream
        token = stream.current
        if token.kind in ("INT", "FLOAT", "STRING"):
            stream.advance()
            return token.value
        if stream.accept_name("null"):
            return NULL
        if stream.accept_name("true"):
            return True
        if stream.accept_name("false"):
            return False
        if stream.accept("OP", "-"):
            value = self.constant()
            if isinstance(value, (int, float)):
                return -value
            raise ParseError("'-' must precede a numeric constant")
        raise ParseError(
            f"expected a constant at position {token.position}, "
            f"found {token.text!r}"
        )

    def attribute_ref(self):
        token = self.stream.current
        if token.kind == "NAME":
            self.stream.advance()
            return token.value
        if token.kind == "INT":
            self.stream.advance()
            return token.value
        raise ParseError(
            f"expected an attribute name or position at {token.position}"
        )

    # -- predicates ----------------------------------------------------------------

    def predicate(self) -> P.Predicate:
        left = self.and_predicate()
        while self.stream.accept_name("or"):
            right = self.and_predicate()
            left = P.Or(left, right)
        return left

    def and_predicate(self) -> P.Predicate:
        left = self.unary_predicate()
        while self.stream.accept_name("and"):
            right = self.unary_predicate()
            left = P.And(left, right)
        return left

    def unary_predicate(self) -> P.Predicate:
        stream = self.stream
        if stream.accept_name("not"):
            return P.Not(self.unary_predicate())
        if stream.accept_name("isnull"):
            stream.expect("OP", "(")
            operand = self.scalar()
            stream.expect("OP", ")")
            return P.IsNull(operand)
        if stream.at_name("true") and not self._starts_comparison_after_const():
            stream.advance()
            return P.TruePred()
        if stream.at_name("false") and not self._starts_comparison_after_const():
            stream.advance()
            return P.FalsePred()
        if stream.at("OP", "("):
            # Could be a parenthesized predicate or a parenthesized scalar
            # beginning a comparison; backtrack on failure.
            mark = stream.index
            stream.advance()
            try:
                inner = self.predicate()
                stream.expect("OP", ")")
                if self._at_comparison_op():
                    raise ParseError("scalar context")
                return inner
            except ParseError:
                stream.index = mark
        return self.comparison()

    def _starts_comparison_after_const(self) -> bool:
        ahead = self.stream.peek()
        return ahead.kind == "OP" and ahead.value in ("<", "<=", "=", "!=", "<>", ">=", ">")

    def _at_comparison_op(self) -> bool:
        token = self.stream.current
        return token.kind == "OP" and token.value in (
            "<",
            "<=",
            "=",
            "!=",
            "<>",
            ">=",
            ">",
        )

    def comparison(self) -> P.Comparison:
        left = self.scalar()
        token = self.stream.current
        if not self._at_comparison_op():
            raise ParseError(
                f"expected a comparison operator at position {token.position}, "
                f"found {token.text!r}"
            )
        op = "!=" if token.value == "<>" else token.value
        self.stream.advance()
        right = self.scalar()
        return P.Comparison(op, left, right)

    # -- scalar expressions --------------------------------------------------------

    def scalar(self) -> P.ScalarExpr:
        left = self.scalar_term()
        while self.stream.at("OP", "+") or self.stream.at("OP", "-"):
            op = self.stream.advance().value
            right = self.scalar_term()
            left = P.Arith(op, left, right)
        return left

    def scalar_term(self) -> P.ScalarExpr:
        left = self.scalar_factor()
        while self.stream.at("OP", "*") or self.stream.at("OP", "/"):
            op = self.stream.advance().value
            right = self.scalar_factor()
            left = P.Arith(op, left, right)
        return left

    def scalar_factor(self) -> P.ScalarExpr:
        stream = self.stream
        token = stream.current
        if token.kind in ("INT", "FLOAT", "STRING"):
            stream.advance()
            return P.Const(token.value)
        if stream.accept("OP", "-"):
            operand = self.scalar_factor()
            if isinstance(operand, P.Const) and isinstance(
                operand.value, (int, float)
            ):
                return P.Const(-operand.value)
            return P.Arith("-", P.Const(0), operand)
        if stream.accept("OP", "("):
            inner = self.scalar()
            stream.expect("OP", ")")
            return inner
        if token.kind == "NAME":
            lowered = token.value.lower()
            if lowered == "null":
                stream.advance()
                return P.Const(NULL)
            if lowered == "true":
                stream.advance()
                return P.Const(True)
            if lowered == "false":
                stream.advance()
                return P.Const(False)
            if lowered in ("left", "right"):
                stream.advance()
                stream.expect("OP", ".")
                attr = self.attribute_ref()
                return P.ColRef(attr, lowered)
            stream.advance()
            return P.ColRef(token.value, None)
        raise ParseError(
            f"expected a scalar expression at position {token.position}, "
            f"found {token.text!r}"
        )

    # -- statements -------------------------------------------------------------------

    def statement(self) -> S.Statement:
        stream = self.stream
        token = stream.current
        if token.kind != "NAME":
            raise ParseError(
                f"expected a statement at position {token.position}, "
                f"found {token.text!r}"
            )
        keyword = token.value.lower()
        if keyword == "insert":
            stream.advance()
            stream.expect("OP", "(")
            relation = stream.expect("NAME").value
            stream.expect("OP", ",")
            source = self.insert_source()
            stream.expect("OP", ")")
            return S.Insert(relation, source)
        if keyword == "delete":
            stream.advance()
            stream.expect("OP", "(")
            relation = stream.expect("NAME").value
            stream.expect("OP", ",")
            if stream.accept_name("where"):
                predicate = self.predicate()
                source: E.Expression = E.Select(E.RelationRef(relation), predicate)
            else:
                source = self.insert_source()
            stream.expect("OP", ")")
            return S.Delete(relation, source)
        if keyword == "update":
            stream.advance()
            stream.expect("OP", "(")
            relation = stream.expect("NAME").value
            stream.expect("OP", ",")
            predicate = self.predicate()
            assignments = []
            while stream.accept("OP", ","):
                attr = self.attribute_ref()
                stream.expect("OP", ":=")
                assignments.append((attr, self.scalar()))
            stream.expect("OP", ")")
            if not assignments:
                raise ParseError("update needs at least one 'attr := expr'")
            return S.Update(relation, predicate, tuple(assignments))
        if keyword == "alarm":
            stream.advance()
            stream.expect("OP", "(")
            expr = self.expression()
            message: Optional[str] = None
            if stream.accept("OP", ","):
                message = stream.expect("STRING").value
            stream.expect("OP", ")")
            return S.Alarm(expr, message)
        if keyword == "abort":
            stream.advance()
            message = None
            if stream.at("STRING"):
                message = stream.advance().value
            return S.Abort(message)
        # assignment: NAME := expr
        if stream.peek().kind == "OP" and stream.peek().value == ":=":
            if keyword in _RESERVED:
                raise ParseError(
                    f"reserved word {token.value!r} cannot be a temporary name"
                )
            stream.advance()
            stream.expect("OP", ":=")
            return S.Assign(token.value, self.expression())
        raise ParseError(
            f"unknown statement {token.value!r} at position {token.position}"
        )

    def insert_source(self) -> E.Expression:
        stream = self.stream
        if stream.at("OP", "("):
            return E.Literal((self.tuple_literal(),))
        return self.expression()

    # -- programs and transactions ------------------------------------------------------

    def program(self, stop_keyword: Optional[str] = None) -> Program:
        statements = []
        stream = self.stream
        while True:
            if stream.current.kind == "EOF":
                break
            if stop_keyword and stream.at_name(stop_keyword):
                break
            statements.append(self.statement())
            if not stream.accept("OP", ";"):
                break
        return Program(statements)

    def transaction(self) -> Transaction:
        self.stream.expect_name("begin")
        body = self.program(stop_keyword="end")
        self.stream.expect_name("end")
        return bracket(body)


def parse_expression(text: str) -> E.Expression:
    """Parse a relation-valued expression."""
    parser = _Parser(text)
    expression = parser.expression()
    parser.stream.expect_eof()
    return expression


def parse_predicate(text: str) -> P.Predicate:
    """Parse a selection/join predicate."""
    parser = _Parser(text)
    predicate = parser.predicate()
    parser.stream.expect_eof()
    return predicate


def parse_statement(text: str) -> S.Statement:
    """Parse a single statement."""
    parser = _Parser(text)
    statement = parser.statement()
    parser.stream.accept("OP", ";")
    parser.stream.expect_eof()
    return statement


def parse_program(text: str) -> Program:
    """Parse a semicolon-separated statement sequence."""
    parser = _Parser(text)
    program = parser.program()
    parser.stream.expect_eof()
    return program


def parse_transaction(text: str) -> Transaction:
    """Parse a ``begin ... end`` transaction."""
    parser = _Parser(text)
    transaction = parser.transaction()
    parser.stream.expect_eof()
    return transaction
