"""Algebraic rewrites for rule actions and translated conditions.

Section 5.2.1 of the paper notes that "optimization of relational algebra
constructs is dealt with extensively in the field of query optimization;
techniques developed in this context can be used for the optimization of
integrity rule actions".  This module implements the standard, always-safe
rewrites used by ``TrOptRS``:

* boolean simplification of predicates (constant folding, double negation);
* cascade fusion of selections: ``σ_p(σ_q(E)) -> σ_{p∧q}(E)``;
* elimination of ``σ_true`` and identity projections;
* pushing selections through union / difference / intersection.

All rewrites preserve set semantics; a property test checks rewritten
expressions evaluate identically to their originals.
"""

from __future__ import annotations

from repro.algebra import expressions as E
from repro.algebra import predicates as P


def simplify_predicate(predicate: P.Predicate) -> P.Predicate:
    """Boolean constant folding and double-negation elimination."""
    if isinstance(predicate, P.Not):
        inner = simplify_predicate(predicate.operand)
        if isinstance(inner, P.Not):
            return inner.operand
        if isinstance(inner, P.TruePred):
            return P.FALSE
        if isinstance(inner, P.FalsePred):
            return P.TRUE
        if isinstance(inner, P.Comparison):
            return P.negate(inner)
        return P.Not(inner)
    if isinstance(predicate, P.And):
        left = simplify_predicate(predicate.left)
        right = simplify_predicate(predicate.right)
        if isinstance(left, P.FalsePred) or isinstance(right, P.FalsePred):
            return P.FALSE
        if isinstance(left, P.TruePred):
            return right
        if isinstance(right, P.TruePred):
            return left
        return P.And(left, right)
    if isinstance(predicate, P.Or):
        left = simplify_predicate(predicate.left)
        right = simplify_predicate(predicate.right)
        if isinstance(left, P.TruePred) or isinstance(right, P.TruePred):
            return P.TRUE
        if isinstance(left, P.FalsePred):
            return right
        if isinstance(right, P.FalsePred):
            return left
        return P.Or(left, right)
    return predicate


def _is_identity_projection(expr: E.Project, input_arity: int) -> bool:
    """True when the projection re-emits all columns unchanged, unnamed."""
    if len(expr.items) != input_arity:
        return False
    for position, item in enumerate(expr.items, start=1):
        if item.name is not None:
            return False
        ref = item.expr
        if not isinstance(ref, P.ColRef) or ref.side not in (None, "left"):
            return False
        if ref.attr != position:
            return False
    return True


def optimize_expression(expr: E.Expression) -> E.Expression:
    """Apply the safe rewrites bottom-up; returns a new expression."""
    if isinstance(expr, E.Select):
        source = optimize_expression(expr.input)
        predicate = simplify_predicate(expr.predicate)
        if isinstance(predicate, P.TruePred):
            return source
        # Cascade fusion.
        if isinstance(source, E.Select):
            return E.Select(
                source.input,
                simplify_predicate(P.And(source.predicate, predicate)),
            )
        # Push selection through the set operators (always valid).
        if isinstance(source, (E.Union, E.Difference, E.Intersection)):
            ctor = type(source)
            return ctor(
                optimize_expression(E.Select(source.left, predicate)),
                optimize_expression(E.Select(source.right, predicate)),
            )
        return E.Select(source, predicate)
    if isinstance(expr, E.Project):
        source = optimize_expression(expr.input)
        return E.Project(source, expr.items)
    if isinstance(expr, (E.Union, E.Difference, E.Intersection, E.Product)):
        ctor = type(expr)
        return ctor(optimize_expression(expr.left), optimize_expression(expr.right))
    if isinstance(expr, (E.Join, E.SemiJoin, E.AntiJoin)):
        ctor = type(expr)
        return ctor(
            optimize_expression(expr.left),
            optimize_expression(expr.right),
            simplify_predicate(expr.predicate),
        )
    if isinstance(expr, E.Rename):
        return E.Rename(optimize_expression(expr.input), expr.name, expr.attributes)
    if isinstance(expr, E.Aggregate):
        return E.Aggregate(optimize_expression(expr.input), expr.func, expr.attr)
    if isinstance(expr, E.Count):
        return E.Count(optimize_expression(expr.input))
    if isinstance(expr, E.Multiplicity):
        return E.Multiplicity(optimize_expression(expr.input))
    return expr


def optimize_statement(statement):
    """Optimize the expressions inside one statement."""
    from repro.algebra import statements as S

    if isinstance(statement, S.Assign):
        return S.Assign(statement.name, optimize_expression(statement.expr))
    if isinstance(statement, S.Insert):
        return S.Insert(statement.relation, optimize_expression(statement.expr))
    if isinstance(statement, S.Delete):
        return S.Delete(statement.relation, optimize_expression(statement.expr))
    if isinstance(statement, S.Update):
        return S.Update(
            statement.relation,
            simplify_predicate(statement.predicate),
            statement.assignments,
        )
    if isinstance(statement, S.Alarm):
        return S.Alarm(optimize_expression(statement.expr), statement.message)
    return statement


def optimize_program(program):
    """Optimize every statement of a program, keeping its flags."""
    from repro.algebra.programs import Program

    return Program(
        [optimize_statement(statement) for statement in program],
        non_triggering=program.non_triggering,
    )
