"""Columnar batches: whole-column kernels and a compact wire format.

PRs 1-6 removed the asymptotic waste from enforcement (cached plans,
O(|Δ|) delta audits, multi-core executors); what remains is the constant
factor the ROADMAP names explicitly — the per-tuple Python loops in
:mod:`repro.algebra.physical`.  This module attacks that constant from
two sides:

* **Whole-column kernels.**  :func:`compile_predicate_kernel` and
  :func:`compile_scalar_kernel` compile the same predicate/scalar ASTs as
  :mod:`repro.algebra.predicates`, but into functions over a *list of
  rows* at once: ``map(itemgetter(p), rows)`` extracts a column at C
  speed, comparisons become one list comprehension instead of a closure
  call per row, and non-nullable attributes skip the three-valued-logic
  branches entirely.  The kernels are semantically exact twins of the
  row closures — selections keep rows whose mask entry ``is True``,
  ``And``/``Or`` evaluate their second operand only on the row subset
  the row path would have evaluated it on (so data-dependent errors such
  as division by zero surface from the same rows), and NULL propagates
  identically.  The physical operators use them batch-at-a-time while
  the row path remains the differential oracle.

* **A columnar wire format.**  :class:`ColumnBatch` stores a relation as
  one Python object per attribute plus a multiplicity vector and a null
  mask.  When pickled, integer and float columns pack into stdlib
  :mod:`array` objects with the smallest fitting typecode, which beats
  per-row tuple pickling by well over the 1.5x the benchmark gates (each
  pickled row costs tuple framing plus memoization; a packed ``array``
  costs its raw bytes).  :func:`encode_relation` /
  :func:`decode_relation` switch to the columnar form above a row
  threshold, and the process executors (:mod:`repro.core.procpool`,
  :mod:`repro.parallel.procpool`) route every replica, Δ blob, and
  fragment shipment through them.

Batch execution is governed by a module-level policy (``"auto"`` /
``"always"`` / ``"never"``): ``auto`` follows the planner's per-operator
eligibility flags plus a runtime row-count guard, while the other two
exist so tests and benchmarks can force either path and assert parity.
A second, independent policy (:func:`fusion_policy`) governs whether the
planner's *fused pipeline regions* execute as one kernel; keeping the
two separate lets tests pin three-way equivalence (row vs unfused batch
vs fused) over the same compiled plan.
"""

from __future__ import annotations

from array import array
from collections import Counter
from operator import itemgetter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.schema import RelationSchema
from repro.engine.types import NULL
from repro.errors import EvaluationError

from repro.algebra.predicates import (
    And,
    Arith,
    ColRef,
    Comparison,
    Const,
    FalsePred,
    IsNull,
    Not,
    Or,
    TruePred,
    _ARITH_OPS,
    _COMPARE_OPS,
    _resolve_position,
)

__all__ = [
    "ColumnBatch",
    "compile_predicate_kernel",
    "compile_scalar_kernel",
    "encode_relation",
    "decode_relation",
    "encode_differentials",
    "decode_differentials",
    "batch_policy",
    "set_batch_policy",
    "fusion_policy",
    "set_fusion_policy",
    "BATCH_ESTIMATE_ROWS",
    "BATCH_MIN_ROWS",
    "WIRE_MIN_ROWS",
]

#: Planner-side eligibility: an operator whose input's *estimated*
#: cardinality clears this floor gets a batch path.  Sits above the
#: default Δ-scan estimate (16 rows) so delta plans stay row-at-a-time,
#: and well below the default base-relation estimate (1000 rows).
BATCH_ESTIMATE_ROWS = 32.0

#: Runtime guard: even an eligible operator falls back to the row path
#: when the actual input is smaller than this — batch setup (column
#: extraction, mask allocation) only pays for itself on real batches.
BATCH_MIN_ROWS = 64

#: Wire-format switch: relations with at least this many distinct rows
#: ship as a :class:`ColumnBatch`; smaller ones pickle directly (the
#: packing overhead would dominate).
WIRE_MIN_ROWS = 512

_POLICIES = ("auto", "always", "never")
_policy = "auto"


def batch_policy() -> str:
    """The current module-wide batch execution policy."""
    return _policy


def set_batch_policy(policy: str) -> str:
    """Set the policy; returns the previous value (for try/finally)."""
    global _policy
    if policy not in _POLICIES:
        raise ValueError(f"unknown batch policy {policy!r}")
    previous = _policy
    _policy = policy
    return previous


_fusion = "auto"


def fusion_policy() -> str:
    """The current pipeline-fusion policy (``auto``/``always``/``never``).

    ``auto`` runs a fused region as one kernel whenever the region's
    source operator is batch-eligible; ``never`` makes every
    :class:`~repro.algebra.physical.FusedPipelineOp` fall back to
    operator-at-a-time execution (which still honours the batch policy),
    so tests can compare fused vs unfused execution of one plan.
    """
    return _fusion


def set_fusion_policy(policy: str) -> str:
    """Set the fusion policy; returns the previous value."""
    global _fusion
    if policy not in _POLICIES:
        raise ValueError(f"unknown fusion policy {policy!r}")
    previous = _fusion
    _fusion = policy
    return previous


# ---------------------------------------------------------------------------
# ColumnBatch: the decomposed-storage form of a Relation
# ---------------------------------------------------------------------------

#: Array typecodes by range, smallest first; unsigned variants interleave
#: so non-negative id columns (the common key shape) take the narrow code.
_INT_CODES = (
    ("b", -(1 << 7), (1 << 7) - 1),
    ("B", 0, (1 << 8) - 1),
    ("h", -(1 << 15), (1 << 15) - 1),
    ("H", 0, (1 << 16) - 1),
    ("i", -(1 << 31), (1 << 31) - 1),
    ("I", 0, (1 << 32) - 1),
    ("q", -(1 << 63), (1 << 63) - 1),
)


def _pack_column(column: list) -> tuple:
    """Pack one column for pickling.

    Returns ``("arr", array, null_positions)`` when every non-null value
    is a plain int or float (bool is excluded: it is dict-key-equal to
    0/1 but must round-trip as bool), else ``("raw", column)``.
    """
    nulls: List[int] = []
    values = column
    if NULL in column:
        nulls = [i for i, v in enumerate(column) if v is NULL]
        values = [0 if v is NULL else v for v in column]
    # Only uniformly-typed numeric columns pack; a mixed int/float column
    # ships raw, because routing ints through a double array would return
    # floats (1 == 1.0 as a dict key, but int/int division semantics and
    # domain fidelity would silently change).
    kind = None
    for v in values:
        t = type(v)
        if t is int:
            if kind is None:
                kind = "int"
            elif kind != "int":
                return ("raw", column)
        elif t is float:
            if kind is None:
                kind = "float"
            elif kind != "float":
                return ("raw", column)
        else:
            return ("raw", column)
    if kind == "int":
        lo = min(values) if values else 0
        hi = max(values) if values else 0
        for code, low, high in _INT_CODES:
            if low <= lo and hi <= high:
                return ("arr", array(code, values), tuple(nulls))
        return ("raw", column)  # bignum outside int64
    if kind == "float":
        return ("arr", array("d", values), tuple(nulls))
    # Empty or non-numeric: ship the list as-is (strings/bools pickle fine).
    return ("raw", column)


def _unpack_column(packed: tuple) -> list:
    if packed[0] == "raw":
        return packed[1]
    _, arr, nulls = packed
    column = arr.tolist()
    for i in nulls:
        column[i] = NULL
    return column


class ColumnBatch:
    """A relation decomposed into per-attribute columns.

    The batch holds the data in whichever form it was built from — a row
    list (fused pipelines hand rows between stages) or a column tuple
    (the wire format unpickles columns) — and converts lazily on first
    access of the other view, so a batch that only ever flows along a
    fused pipeline never pays for column extraction and a batch that
    only ships over a pipe never pays for row reassembly.

    ``columns[j][i]`` is attribute ``j`` of row ``i``; ``counts`` is the
    parallel multiplicity vector, or ``None`` when every multiplicity is
    1.  A *normalized* batch has distinct rows with merged counts (the
    shape a Relation stores); interior pipeline batches may carry
    duplicate rows and per-occurrence counts (``normalized=False``) and
    defer the merge to :meth:`to_relation` at the region boundary.
    ``index_specs`` carries the relation's *declared* index positions so
    a decoded relation rebuilds its indexes lazily, exactly like a
    freshly copied one.
    """

    __slots__ = (
        "schema",
        "bag",
        "_columns",
        "_rows",
        "counts",
        "index_specs",
        "row_count",
        "normalized",
    )

    def __init__(
        self,
        schema: RelationSchema,
        bag: bool,
        columns: Sequence[list],
        counts: Optional[list],
        index_specs: Tuple[tuple, ...] = (),
        row_count: Optional[int] = None,
    ):
        self.schema = schema
        self.bag = bag
        self._columns = tuple(columns)
        self._rows = None
        self.counts = counts
        self.index_specs = tuple(index_specs)
        if row_count is None:
            row_count = len(self._columns[0]) if self._columns else 0
        self.row_count = row_count
        self.normalized = True

    # -- conversion --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: RelationSchema,
        bag: bool,
        rows: list,
        counts: Optional[list] = None,
        index_specs: Tuple[tuple, ...] = (),
        normalized: bool = True,
    ) -> "ColumnBatch":
        """Wrap an existing row list without extracting columns."""
        batch = cls.__new__(cls)
        batch.schema = schema
        batch.bag = bag
        batch._columns = None
        batch._rows = rows
        batch.counts = counts
        batch.index_specs = tuple(index_specs)
        batch.row_count = len(rows)
        batch.normalized = normalized
        return batch

    @classmethod
    def from_relation(cls, relation) -> "ColumnBatch":
        """Decompose a Relation or OverlayRelation (via its merged rows)."""
        rows, counts = relation.rows_and_counts()
        indexes = getattr(relation, "_indexes", None)
        specs = tuple(indexes.specs()) if indexes is not None else ()
        return cls.from_rows(
            relation.schema,
            relation.bag,
            list(rows),
            list(counts) if counts is not None else None,
            specs,
        )

    @property
    def columns(self) -> tuple:
        """Per-attribute column lists (built lazily from rows)."""
        if self._columns is None:
            rows = self._rows
            if rows:
                self._columns = tuple(list(column) for column in zip(*rows))
            else:
                self._columns = tuple([] for _ in self.schema.attributes)
        return self._columns

    def rows_list(self) -> list:
        """The batch's rows as tuples (built lazily from columns)."""
        if self._rows is None:
            self._rows = list(zip(*self._columns))
        return self._rows

    def to_relation(self):
        """Reassemble a plain :class:`~repro.engine.relation.Relation`.

        Non-normalized batches merge here: set mode keeps the first
        occurrence of each row (matching the row path's ``setdefault``),
        bag mode sums multiplicities.
        """
        from repro.engine.relation import Relation

        relation = Relation(self.schema, bag=self.bag)
        if self.row_count:
            relation._rows = self._merged_rows()
        for positions in self.index_specs:
            relation.declare_index(positions)
        return relation

    def _merged_rows(self) -> dict:
        """The batch contents as a ``{row: count}`` dict."""
        rows = self.rows_list()
        counts = self.counts
        if not self.bag or counts is None:
            if self.normalized or not self.bag:
                return dict.fromkeys(rows, 1)
            return dict(Counter(rows))
        if self.normalized:
            return dict(zip(rows, counts))
        merged: dict = {}
        get = merged.get
        for row, count in zip(rows, counts):
            merged[row] = get(row, 0) + count
        return merged

    def _normalized(self) -> "ColumnBatch":
        """An equivalent batch with distinct rows and merged counts."""
        if self.normalized:
            return self
        merged = self._merged_rows()
        all_ones = not self.bag or all(c == 1 for c in merged.values())
        return ColumnBatch.from_rows(
            self.schema,
            self.bag,
            list(merged),
            None if all_ones else list(merged.values()),
            self.index_specs,
        )

    def column(self, position: int) -> list:
        """The column at 0-based ``position``."""
        return self.columns[position]

    def __len__(self) -> int:
        if self.counts is not None:
            return sum(self.counts)
        return self.row_count

    def __eq__(self, other) -> bool:
        if not isinstance(other, ColumnBatch):
            return NotImplemented
        return self.to_relation() == other.to_relation()

    def __repr__(self) -> str:
        kind = "bag" if self.bag else "set"
        return (
            f"ColumnBatch({self.schema.name}, {kind}, "
            f"{len(self.schema.attributes)} cols x {self.row_count} rows)"
        )

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        batch = self._normalized()
        counts = batch.counts
        packed_counts = None
        if counts is not None:
            packed_counts = _pack_column(counts)
        return (
            batch.schema,
            batch.bag,
            tuple(_pack_column(column) for column in batch.columns),
            packed_counts,
            batch.index_specs,
            batch.row_count,
        )

    def __setstate__(self, state):
        schema, bag, packed, packed_counts, specs, row_count = state
        self.schema = schema
        self.bag = bag
        self._columns = tuple(_unpack_column(column) for column in packed)
        self._rows = None
        self.counts = (
            _unpack_column(packed_counts) if packed_counts is not None else None
        )
        self.index_specs = specs
        self.row_count = row_count
        self.normalized = True


# ---------------------------------------------------------------------------
# Wire format helpers
# ---------------------------------------------------------------------------


def encode_relation(relation, min_rows: int = WIRE_MIN_ROWS):
    """Columnar form when large enough to pay off, else the relation.

    Goes through :meth:`Relation.column_batch` when available so a
    read-mostly relation that already caches its columnar form (or is
    columnar-backed outright) ships without re-decomposing.
    """
    if relation is None:
        return None
    if relation.distinct_count() >= min_rows:
        column_batch = getattr(relation, "column_batch", None)
        if column_batch is not None:
            return column_batch()
        return ColumnBatch.from_relation(relation)
    return relation


def decode_relation(obj, lazy: bool = False):
    """Inverse of :func:`encode_relation`.

    With ``lazy=True`` a columnar payload decodes into a
    :class:`~repro.engine.relation.ColumnarRelation` — scans read its
    columns directly and the row dict only materializes if something
    mutates or row-iterates it.
    """
    if isinstance(obj, ColumnBatch):
        if lazy:
            from repro.engine.relation import ColumnarRelation

            return ColumnarRelation(obj)
        return obj.to_relation()
    return obj


def encode_differentials(differentials, min_rows: int = WIRE_MIN_ROWS):
    """Encode a ``{name: (plus, minus)}`` delta map column-wise."""
    return {
        name: (
            encode_relation(plus, min_rows),
            encode_relation(minus, min_rows),
        )
        for name, (plus, minus) in differentials.items()
    }


def decode_differentials(encoded, lazy: bool = False):
    """Inverse of :func:`encode_differentials`."""
    return {
        name: (decode_relation(plus, lazy), decode_relation(minus, lazy))
        for name, (plus, minus) in encoded.items()
    }


# ---------------------------------------------------------------------------
# Whole-column kernels
# ---------------------------------------------------------------------------
#
# A scalar kernel has signature f(rows) -> list of values (with the NULL
# marker for nulls); a predicate kernel returns a mask of True/False/None
# mirroring the row closures' three-valued logic.  Compilation returns
# (kernel, maybe_null) so composites can skip NULL branches when every
# referenced attribute is non-nullable.


def _scalar_kernel(expr, schema) -> tuple:
    if isinstance(expr, Const):
        value = expr.value
        return (lambda rows: [value] * len(rows)), value is NULL
    if isinstance(expr, ColRef):
        which, position = _resolve_position(expr, schema, None)
        if which != 0:  # pragma: no cover - _resolve_position raises first
            raise EvaluationError(
                f"column reference {expr!r} used in a unary context"
            )
        getter = itemgetter(position)
        nullable = schema.attributes[position].nullable
        return (lambda rows: list(map(getter, rows))), nullable
    if isinstance(expr, Arith):
        left_fn, left_null = _scalar_kernel(expr.left, schema)
        right_fn, right_null = _scalar_kernel(expr.right, schema)
        maybe_null = left_null or right_null
        if expr.op == "/":

            def divide_kernel(rows):
                out = []
                append = out.append
                for a, b in zip(left_fn(rows), right_fn(rows)):
                    if a is NULL or b is NULL:
                        append(NULL)
                        continue
                    if b == 0:
                        raise EvaluationError("division by zero")
                    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                        append(a // b)
                    else:
                        append(a / b)
                return out

            return divide_kernel, maybe_null
        op = _ARITH_OPS[expr.op]
        if maybe_null:

            def arith_null_kernel(rows, op=op):
                return [
                    NULL if a is NULL or b is NULL else op(a, b)
                    for a, b in zip(left_fn(rows), right_fn(rows))
                ]

            return arith_null_kernel, True

        def arith_kernel(rows, op=op):
            return [op(a, b) for a, b in zip(left_fn(rows), right_fn(rows))]

        return arith_kernel, False
    raise EvaluationError(f"cannot compile scalar expression {expr!r}")


def _predicate_kernel(predicate, schema) -> Callable:
    if isinstance(predicate, TruePred):
        return lambda rows: [True] * len(rows)
    if isinstance(predicate, FalsePred):
        return lambda rows: [False] * len(rows)
    if isinstance(predicate, Comparison):
        op = _COMPARE_OPS[predicate.op]
        left, right = predicate.left, predicate.right
        # Fast path: plain column <op> constant — one comprehension over
        # the extracted column, no zip, no per-element NULL test when the
        # attribute is non-nullable.
        if isinstance(left, ColRef) and isinstance(right, Const):
            which, position = _resolve_position(left, schema, None)
            getter = itemgetter(position)
            value = right.value
            if value is NULL:
                return lambda rows: [None] * len(rows)
            if not schema.attributes[position].nullable:
                return lambda rows: [op(v, value) for v in map(getter, rows)]
            return lambda rows: [
                None if v is NULL else op(v, value) for v in map(getter, rows)
            ]
        left_fn, left_null = _scalar_kernel(left, schema)
        right_fn, right_null = _scalar_kernel(right, schema)
        if left_null or right_null:

            def compare_null_kernel(rows, op=op):
                return [
                    None if a is NULL or b is NULL else op(a, b)
                    for a, b in zip(left_fn(rows), right_fn(rows))
                ]

            return compare_null_kernel

        def compare_kernel(rows, op=op):
            return [op(a, b) for a, b in zip(left_fn(rows), right_fn(rows))]

        return compare_kernel
    if isinstance(predicate, IsNull):
        operand_fn, maybe_null = _scalar_kernel(predicate.operand, schema)
        if not maybe_null:
            return lambda rows: [False] * len(rows)
        return lambda rows: [v is NULL for v in operand_fn(rows)]
    if isinstance(predicate, Not):
        operand_fn = _predicate_kernel(predicate.operand, schema)
        return lambda rows: [
            None if v is None else not v for v in operand_fn(rows)
        ]
    if isinstance(predicate, (And, Or)):
        left_fn = _predicate_kernel(predicate.left, schema)
        right_fn = _predicate_kernel(predicate.right, schema)
        # The row closures short-circuit: And skips its right operand when
        # the left is False, Or when it is True.  Evaluate the right kernel
        # only on the surviving row subset so data-dependent errors
        # (division by zero) arise from exactly the rows the row path
        # would have touched.
        stop = False if isinstance(predicate, And) else True

        def connective_kernel(rows, stop=stop):
            a_mask = left_fn(rows)
            survivors = [row for row, a in zip(rows, a_mask) if a is not stop]
            if len(survivors) == len(rows):
                b_mask = right_fn(rows)
                b_iter = iter(b_mask)
            else:
                b_iter = iter(right_fn(survivors))
            if stop is False:  # And
                out = []
                append = out.append
                for a in a_mask:
                    if a is False:
                        append(False)
                        continue
                    b = next(b_iter)
                    if b is False:
                        append(False)
                    elif a is None or b is None:
                        append(None)
                    else:
                        append(True)
                return out
            out = []
            append = out.append
            for a in a_mask:
                if a is True:
                    append(True)
                    continue
                b = next(b_iter)
                if b is True:
                    append(True)
                elif a is None or b is None:
                    append(None)
                else:
                    append(False)
            return out

        return connective_kernel
    raise EvaluationError(f"cannot compile predicate {predicate!r}")


def compile_scalar_kernel(expr, schema: RelationSchema) -> Callable:
    """Compile a unary scalar expression to ``f(rows) -> list``."""
    kernel, _ = _scalar_kernel(expr, schema)
    return kernel


def compile_predicate_kernel(predicate, schema: RelationSchema) -> Callable:
    """Compile a unary predicate to ``f(rows) -> [True|False|None]``."""
    return _predicate_kernel(predicate, schema)
