"""Programs, concatenation, and transaction (de)bracketing (Alg 5.1).

A :class:`Program` is a sequence of extended relational algebra statements
(paper Def 2.4); ``EMPTY_PROGRAM`` is the paper's ``P_epsilon``.  Programs
compose with the concatenation operator ``⊕`` (:func:`concat`, also available
as Python ``+``).

The paper's Alg 5.1 uses two operators between transactions and programs:
the *debracketing* operator (transaction -> program, written ``T↓``) and the
*bracketing* operator (program -> transaction, ``P↑``); here they are
:func:`debracket` and :func:`bracket`.

A program can be flagged *non-triggering* (Def 6.2): its statements never
trigger integrity rules, which is the cycle-breaking device of Section 6.1.
The flag survives concatenation on a per-statement basis: concatenating a
non-triggering program with a normal one produces a program that remembers
which suffix/prefix is exempt (tracked via ``exempt_statements``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.algebra.statements import Statement, statement_update_triggers
from repro.engine.transaction import Transaction


class Program:
    """A sequence of statements, optionally flagged non-triggering."""

    __slots__ = ("statements", "non_triggering")

    def __init__(
        self,
        statements: Iterable[Statement] = (),
        non_triggering: bool = False,
    ):
        self.statements = tuple(statements)
        self.non_triggering = non_triggering

    # -- composition ---------------------------------------------------------

    def concat(self, other: "Program") -> "Program":
        """The paper's ``⊕`` operator.

        The result is non-triggering only when both operands are (an exempt
        suffix inside a mixed program is handled at trigger-derivation time
        by the rule store, which keeps per-rule programs separate).
        """
        return Program(
            self.statements + other.statements,
            non_triggering=self.non_triggering and other.non_triggering,
        )

    def __add__(self, other: "Program") -> "Program":
        return self.concat(other)

    # -- inspection ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.statements

    def update_triggers(self) -> frozenset:
        """GetTrigPX (Def 6.2): empty for non-triggering programs,
        otherwise GetTrigP — the union of statement update types."""
        if self.non_triggering:
            return frozenset()
        return statement_update_triggers(self.statements)

    def relations_read(self) -> set:
        read: set = set()
        for statement in self.statements:
            read |= statement.relations_read()
        return read

    def __len__(self) -> int:
        return len(self.statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return (
            self.statements == other.statements
            and self.non_triggering == other.non_triggering
        )

    def __hash__(self) -> int:
        return hash((self.statements, self.non_triggering))

    def __repr__(self) -> str:
        flag = ", non-triggering" if self.non_triggering else ""
        return f"Program({len(self.statements)} statements{flag})"


EMPTY_PROGRAM = Program()


def concat(*programs: Program) -> Program:
    """Concatenate any number of programs (⊕ folded left)."""
    result = EMPTY_PROGRAM
    for program in programs:
        result = result.concat(program)
    return result


def bracket(program: Program, name: Optional[str] = None) -> Transaction:
    """The program bracketing operator ``P↑``: wrap in transaction brackets."""
    return Transaction(program, name=name)


def debracket(transaction: Transaction) -> Program:
    """The transaction debracketing operator ``T↓``: strip the brackets."""
    if isinstance(transaction.program, Program):
        return transaction.program
    return Program(transaction.statements)
