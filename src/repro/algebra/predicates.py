"""Scalar expressions and predicates for the extended relational algebra.

Predicates appear in selections and joins; scalar expressions additionally
appear in generalized projection (the paper's compensating action inserts
``(name, null, null)`` tuples, i.e. projects constants) and in update
statements.

Column references carry an optional *side* so that join predicates can
distinguish the two inputs (``left.i = right.j`` is the algebra form of the
paper's ``x.i = y.j``).  In unary contexts the side is ``None``.

Null semantics follow the SQL convention (three-valued logic): a comparison
involving NULL is *unknown*; ``and``/``or``/``not`` are Kleene connectives;
a selection keeps only rows whose predicate is *true*.  Within Python,
unknown is represented by ``None``.

For evaluation speed — the Section 7 benchmarks select over tens of
thousands of tuples — every node compiles to a plain Python closure via
:func:`compile_scalar` / :func:`compile_predicate`; the AST itself is made of
frozen dataclasses with structural equality, which the translation tests rely
on.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.engine.schema import RelationSchema
from repro.engine.types import NULL
from repro.errors import EvaluationError


class ScalarExpr:
    """Base class for scalar expressions."""

    __slots__ = ()


class Predicate:
    """Base class for predicates (boolean-valued expressions)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(ScalarExpr):
    """A constant value (including the NULL marker)."""

    value: object

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class ColRef(ScalarExpr):
    """An attribute selection ``x.i`` / ``x.name`` (paper Def 4.2).

    ``attr`` is a 1-based position or an attribute name; ``side`` is ``None``
    for unary contexts, or ``"left"`` / ``"right"`` inside join predicates.
    """

    attr: Union[int, str]
    side: Optional[str] = None

    def __repr__(self) -> str:
        prefix = f"{self.side}." if self.side else ""
        return f"ColRef({prefix}{self.attr})"


@dataclass(frozen=True)
class Arith(ScalarExpr):
    """An arithmetic function application (paper's FV = {+, -, *, /})."""

    op: str
    left: ScalarExpr
    right: ScalarExpr


@dataclass(frozen=True)
class Comparison(Predicate):
    """An arithmetic comparison (paper's PV = {<, <=, =, !=, >=, >})."""

    op: str
    left: ScalarExpr
    right: ScalarExpr


@dataclass(frozen=True)
class And(Predicate):
    left: Predicate
    right: Predicate


@dataclass(frozen=True)
class Or(Predicate):
    left: Predicate
    right: Predicate


@dataclass(frozen=True)
class Not(Predicate):
    operand: Predicate


@dataclass(frozen=True)
class TruePred(Predicate):
    pass


@dataclass(frozen=True)
class FalsePred(Predicate):
    pass


@dataclass(frozen=True)
class IsNull(Predicate):
    """NULL test (needed because NULL never compares equal to anything)."""

    operand: ScalarExpr


TRUE = TruePred()
FALSE = FalsePred()

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
}

_COMPARE_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    "=": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    ">": operator.gt,
}

COMPARISON_NEGATIONS = {
    "<": ">=",
    "<=": ">",
    "=": "!=",
    "!=": "=",
    ">=": "<",
    ">": "<=",
}


def negate(predicate: Predicate) -> Predicate:
    """Structural negation with the obvious simplifications.

    Used by the calculus-to-algebra translation: Table 1's first row selects
    the tuples satisfying ``not c``, and producing ``alcohol < 0`` rather
    than ``not (alcohol >= 0)`` keeps the output readable and matches the
    paper's presentation.
    """
    if isinstance(predicate, Not):
        return predicate.operand
    if isinstance(predicate, TruePred):
        return FALSE
    if isinstance(predicate, FalsePred):
        return TRUE
    if isinstance(predicate, Comparison):
        return Comparison(
            COMPARISON_NEGATIONS[predicate.op], predicate.left, predicate.right
        )
    if isinstance(predicate, And):
        return Or(negate(predicate.left), negate(predicate.right))
    if isinstance(predicate, Or):
        return And(negate(predicate.left), negate(predicate.right))
    return Not(predicate)


def conjoin(*predicates: Predicate) -> Predicate:
    """Conjunction of predicates with TRUE-elimination."""
    result: Optional[Predicate] = None
    for predicate in predicates:
        if isinstance(predicate, TruePred):
            continue
        if isinstance(predicate, FalsePred):
            return FALSE
        result = predicate if result is None else And(result, predicate)
    return result if result is not None else TRUE


# ---------------------------------------------------------------------------
# Compilation to closures
# ---------------------------------------------------------------------------
#
# Compiled scalar functions have signature f(left_row, right_row) -> value;
# in unary contexts right_row is None.  Compiled predicates return True,
# False, or None (unknown).


def _resolve_position(
    ref: ColRef, schema: RelationSchema, right_schema: Optional[RelationSchema]
) -> tuple:
    """Map a ColRef to (row_selector_index, 0-based position).

    row_selector_index 0 = left/unary row, 1 = right row.
    """
    if ref.side == "right":
        if right_schema is None:
            raise EvaluationError(
                f"column reference {ref!r} used in a unary context"
            )
        return 1, right_schema.position_of(ref.attr) - 1
    if ref.side == "left":
        return 0, schema.position_of(ref.attr) - 1
    # Unqualified: resolve against the unary schema; in binary contexts try
    # left first, then right (names are disambiguated by the parser already).
    try:
        return 0, schema.position_of(ref.attr) - 1
    except Exception:
        if right_schema is not None:
            return 1, right_schema.position_of(ref.attr) - 1
        raise


def compile_scalar(
    expr: ScalarExpr,
    schema: RelationSchema,
    right_schema: Optional[RelationSchema] = None,
) -> Callable:
    """Compile a scalar expression into ``f(left_row, right_row) -> value``."""
    if isinstance(expr, Const):
        value = expr.value
        return lambda left, right=None: value
    if isinstance(expr, ColRef):
        which, position = _resolve_position(expr, schema, right_schema)
        if which == 0:
            return lambda left, right=None: left[position]
        return lambda left, right=None: right[position]
    if isinstance(expr, Arith):
        left_fn = compile_scalar(expr.left, schema, right_schema)
        right_fn = compile_scalar(expr.right, schema, right_schema)
        if expr.op == "/":

            def divide(left, right=None):
                a = left_fn(left, right)
                b = right_fn(left, right)
                if a is NULL or b is NULL:
                    return NULL
                if b == 0:
                    raise EvaluationError("division by zero")
                if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                    return a // b
                return a / b

            return divide
        op = _ARITH_OPS[expr.op]

        def arith(left, right=None, op=op):
            a = left_fn(left, right)
            b = right_fn(left, right)
            if a is NULL or b is NULL:
                return NULL
            return op(a, b)

        return arith
    raise EvaluationError(f"cannot compile scalar expression {expr!r}")


def compile_predicate(
    predicate: Predicate,
    schema: RelationSchema,
    right_schema: Optional[RelationSchema] = None,
) -> Callable:
    """Compile a predicate into ``f(left_row, right_row) -> True|False|None``."""
    if isinstance(predicate, TruePred):
        return lambda left, right=None: True
    if isinstance(predicate, FalsePred):
        return lambda left, right=None: False
    if isinstance(predicate, Comparison):
        left_fn = compile_scalar(predicate.left, schema, right_schema)
        right_fn = compile_scalar(predicate.right, schema, right_schema)
        op = _COMPARE_OPS[predicate.op]

        def compare(left, right=None, op=op):
            a = left_fn(left, right)
            b = right_fn(left, right)
            if a is NULL or b is NULL:
                return None
            return op(a, b)

        return compare
    if isinstance(predicate, IsNull):
        operand_fn = compile_scalar(predicate.operand, schema, right_schema)
        return lambda left, right=None: operand_fn(left, right) is NULL
    if isinstance(predicate, Not):
        operand_fn = compile_predicate(predicate.operand, schema, right_schema)

        def negation(left, right=None):
            value = operand_fn(left, right)
            return None if value is None else not value

        return negation
    if isinstance(predicate, And):
        left_fn = compile_predicate(predicate.left, schema, right_schema)
        right_fn = compile_predicate(predicate.right, schema, right_schema)

        def conjunction(left, right=None):
            a = left_fn(left, right)
            if a is False:
                return False
            b = right_fn(left, right)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return conjunction
    if isinstance(predicate, Or):
        left_fn = compile_predicate(predicate.left, schema, right_schema)
        right_fn = compile_predicate(predicate.right, schema, right_schema)

        def disjunction(left, right=None):
            a = left_fn(left, right)
            if a is True:
                return True
            b = right_fn(left, right)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return disjunction
    raise EvaluationError(f"cannot compile predicate {predicate!r}")


def predicate_columns(predicate: Predicate) -> set:
    """All ColRefs mentioned by a predicate (for optimizer analyses)."""
    found: set = set()
    _collect_columns(predicate, found)
    return found


def _collect_columns(node, found: set) -> None:
    if isinstance(node, ColRef):
        found.add(node)
    elif isinstance(node, (Arith, Comparison)):
        _collect_columns(node.left, found)
        _collect_columns(node.right, found)
    elif isinstance(node, (And, Or)):
        _collect_columns(node.left, found)
        _collect_columns(node.right, found)
    elif isinstance(node, (Not, IsNull)):
        _collect_columns(node.operand, found)
