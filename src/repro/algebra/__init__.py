"""Extended relational algebra (paper Def 2.4, Def 5.1).

The extended relational algebra extends the standard algebra with statements
for the operational specification of actions against a database: assignment,
insert, delete, and update statements, plus the ``alarm`` statement the paper
adds for aborting integrity programs (Def 5.1).

This package provides:

* :mod:`repro.algebra.predicates` — scalar expressions and predicates;
* :mod:`repro.algebra.expressions` — relation-valued expression AST;
* :mod:`repro.algebra.statements` — the statement AST;
* :mod:`repro.algebra.programs` — programs, concatenation ``⊕``, and the
  transaction (de)bracketing operators of Alg 5.1;
* :mod:`repro.algebra.evaluation` — evaluation of expressions against a
  name-resolution context;
* :mod:`repro.algebra.planner` — compilation of expressions into cached
  physical query plans (the default evaluation backend);
* :mod:`repro.algebra.physical` — the physical operator DAGs the planner
  emits (hash joins, index-accelerated selections, estimates);
* :mod:`repro.algebra.parser` — text forms for expressions, programs, and
  whole transactions;
* :mod:`repro.algebra.optimizer` — algebraic rewrites;
* :mod:`repro.algebra.pretty` — rendering ASTs back to text.
"""

from repro.algebra.predicates import (
    And,
    Arith,
    ColRef,
    Comparison,
    Const,
    FalsePred,
    IsNull,
    Not,
    Or,
    TruePred,
)
from repro.algebra.expressions import (
    Aggregate,
    AntiJoin,
    Count,
    Delta,
    Difference,
    Intersection,
    Join,
    Literal,
    Multiplicity,
    Product,
    Project,
    RelationRef,
    Rename,
    Select,
    SemiJoin,
    Union,
)
from repro.algebra.statements import (
    Abort,
    Alarm,
    Assign,
    Delete,
    Insert,
    Update,
)
from repro.algebra.programs import (
    EMPTY_PROGRAM,
    Program,
    bracket,
    concat,
    debracket,
)
from repro.algebra.evaluation import evaluate_expression, StandaloneContext
from repro.algebra.planner import (
    compile_expression,
    explain,
    get_default_engine,
    get_plan,
    set_default_engine,
)
from repro.algebra.parser import (
    parse_expression,
    parse_predicate,
    parse_program,
    parse_statement,
    parse_transaction,
)
from repro.algebra.pretty import render_expression, render_program, render_statement

__all__ = [
    "Abort",
    "Aggregate",
    "Alarm",
    "And",
    "AntiJoin",
    "Arith",
    "Assign",
    "ColRef",
    "Comparison",
    "Const",
    "Count",
    "Delete",
    "Delta",
    "Difference",
    "EMPTY_PROGRAM",
    "FalsePred",
    "Insert",
    "Intersection",
    "IsNull",
    "Join",
    "Literal",
    "Multiplicity",
    "Not",
    "Or",
    "Product",
    "Program",
    "Project",
    "RelationRef",
    "Rename",
    "Select",
    "SemiJoin",
    "StandaloneContext",
    "TruePred",
    "Union",
    "Update",
    "bracket",
    "compile_expression",
    "concat",
    "debracket",
    "evaluate_expression",
    "explain",
    "get_default_engine",
    "get_plan",
    "set_default_engine",
    "parse_expression",
    "parse_predicate",
    "parse_program",
    "parse_statement",
    "parse_transaction",
    "render_expression",
    "render_program",
    "render_statement",
]
