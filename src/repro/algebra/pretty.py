"""Rendering algebra ASTs back to text.

Two styles are provided:

* :func:`render_expression` / :func:`render_statement` /
  :func:`render_program` produce the parseable functional notation of
  :mod:`repro.algebra.parser` (round-trip property: parsing the rendering
  yields a structurally equal AST);
* :func:`render_mathy` produces the paper's blackboard notation
  (``σ``, ``π``, ``⋈``, ``⋉``, ``⊳``, ``−``, ``∪``) used when regenerating
  Table 1 for side-by-side comparison with the paper.
"""

from __future__ import annotations

from repro.algebra import expressions as E
from repro.algebra import predicates as P
from repro.algebra import statements as S
from repro.algebra.programs import Program
from repro.engine.types import NULL


def _render_value(value) -> str:
    if value is NULL:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def render_scalar(expr: P.ScalarExpr) -> str:
    if isinstance(expr, P.Const):
        return _render_value(expr.value)
    if isinstance(expr, P.ColRef):
        prefix = f"{expr.side}." if expr.side else ""
        return f"{prefix}{expr.attr}"
    if isinstance(expr, P.Arith):
        return f"({render_scalar(expr.left)} {expr.op} {render_scalar(expr.right)})"
    raise TypeError(f"cannot render scalar {expr!r}")


def render_predicate(predicate: P.Predicate) -> str:
    if isinstance(predicate, P.TruePred):
        return "true"
    if isinstance(predicate, P.FalsePred):
        return "false"
    if isinstance(predicate, P.Comparison):
        return (
            f"{render_scalar(predicate.left)} {predicate.op} "
            f"{render_scalar(predicate.right)}"
        )
    if isinstance(predicate, P.And):
        return (
            f"({render_predicate(predicate.left)} and "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, P.Or):
        return (
            f"({render_predicate(predicate.left)} or "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, P.Not):
        return f"not {render_predicate(predicate.operand)}"
    if isinstance(predicate, P.IsNull):
        return f"isnull({render_scalar(predicate.operand)})"
    raise TypeError(f"cannot render predicate {predicate!r}")


def render_expression(expr: E.Expression) -> str:
    """Functional (parseable) rendering of an expression."""
    if isinstance(expr, E.RelationRef):
        return expr.name
    if isinstance(expr, E.Delta):
        # Rendered via the auxiliary naming convention; re-parsing yields an
        # equivalent RelationRef (same resolution, weaker structure).
        return expr.name
    if isinstance(expr, E.Literal):
        rows = ", ".join(
            "(" + ", ".join(_render_value(v) for v in row) + ")"
            for row in expr.rows
        )
        return "{" + rows + "}"
    if isinstance(expr, E.Select):
        return (
            f"select({render_expression(expr.input)}, "
            f"{render_predicate(expr.predicate)})"
        )
    if isinstance(expr, E.Project):
        items = ", ".join(
            render_scalar(item.expr) + (f" as {item.name}" if item.name else "")
            for item in expr.items
        )
        return f"project({render_expression(expr.input)}, [{items}])"
    if isinstance(expr, E.Union):
        return f"union({render_expression(expr.left)}, {render_expression(expr.right)})"
    if isinstance(expr, E.Difference):
        return f"diff({render_expression(expr.left)}, {render_expression(expr.right)})"
    if isinstance(expr, E.Intersection):
        return (
            f"intersect({render_expression(expr.left)}, "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, E.Product):
        return (
            f"product({render_expression(expr.left)}, "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, E.Join):
        return (
            f"join({render_expression(expr.left)}, {render_expression(expr.right)}, "
            f"{render_predicate(expr.predicate)})"
        )
    if isinstance(expr, E.SemiJoin):
        return (
            f"semijoin({render_expression(expr.left)}, "
            f"{render_expression(expr.right)}, {render_predicate(expr.predicate)})"
        )
    if isinstance(expr, E.AntiJoin):
        return (
            f"antijoin({render_expression(expr.left)}, "
            f"{render_expression(expr.right)}, {render_predicate(expr.predicate)})"
        )
    if isinstance(expr, E.Rename):
        if expr.attributes:
            attrs = ", ".join(expr.attributes)
            return f"rename({render_expression(expr.input)}, {expr.name}, [{attrs}])"
        return f"rename({render_expression(expr.input)}, {expr.name})"
    if isinstance(expr, E.Aggregate):
        return f"{expr.func.lower()}({render_expression(expr.input)}, {expr.attr})"
    if isinstance(expr, E.Count):
        return f"cnt({render_expression(expr.input)})"
    if isinstance(expr, E.Multiplicity):
        return f"mlt({render_expression(expr.input)})"
    raise TypeError(f"cannot render expression {expr!r}")


def render_statement(statement: S.Statement) -> str:
    """Functional (parseable) rendering of a statement."""
    if isinstance(statement, S.Assign):
        return f"{statement.name} := {render_expression(statement.expr)}"
    if isinstance(statement, S.Insert):
        source = render_expression(statement.expr)
        if isinstance(statement.expr, E.Literal) and len(statement.expr.rows) == 1:
            source = source[1:-1]  # single-tuple sugar: drop the braces
        return f"insert({statement.relation}, {source})"
    if isinstance(statement, S.Delete):
        return f"delete({statement.relation}, {render_expression(statement.expr)})"
    if isinstance(statement, S.Update):
        assignments = ", ".join(
            f"{attr} := {render_scalar(expr)}" for attr, expr in statement.assignments
        )
        return (
            f"update({statement.relation}, "
            f"{render_predicate(statement.predicate)}, {assignments})"
        )
    if isinstance(statement, S.Alarm):
        if statement.message:
            return (
                f"alarm({render_expression(statement.expr)}, "
                f"{_render_value(statement.message)})"
            )
        return f"alarm({render_expression(statement.expr)})"
    if isinstance(statement, S.Abort):
        if statement.message:
            return f"abort {_render_value(statement.message)}"
        return "abort"
    raise TypeError(f"cannot render statement {statement!r}")


def render_program(program: Program, indent: str = "") -> str:
    """Render a program, one statement per line."""
    return "\n".join(
        f"{indent}{render_statement(statement)};" for statement in program
    )


def render_transaction(transaction) -> str:
    """Render a transaction as ``begin ... end`` text."""
    from repro.algebra.programs import debracket

    body = render_program(debracket(transaction), indent="    ")
    if body:
        return f"begin\n{body}\nend"
    return "begin\nend"


# ---------------------------------------------------------------------------
# Paper-style (mathy) rendering for Table 1 regeneration
# ---------------------------------------------------------------------------


def _mathy_scalar(expr: P.ScalarExpr) -> str:
    if isinstance(expr, P.Const):
        return _render_value(expr.value)
    if isinstance(expr, P.ColRef):
        if expr.side == "left":
            return f"x.{expr.attr}"
        if expr.side == "right":
            return f"y.{expr.attr}"
        return str(expr.attr)
    if isinstance(expr, P.Arith):
        return f"{_mathy_scalar(expr.left)}{expr.op}{_mathy_scalar(expr.right)}"
    raise TypeError(f"cannot render scalar {expr!r}")


def _mathy_predicate(predicate: P.Predicate) -> str:
    if isinstance(predicate, P.Comparison):
        op = {"!=": "≠", "<=": "≤", ">=": "≥"}.get(predicate.op, predicate.op)
        return f"{_mathy_scalar(predicate.left)}{op}{_mathy_scalar(predicate.right)}"
    if isinstance(predicate, P.And):
        return f"{_mathy_predicate(predicate.left)}∧{_mathy_predicate(predicate.right)}"
    if isinstance(predicate, P.Or):
        return f"{_mathy_predicate(predicate.left)}∨{_mathy_predicate(predicate.right)}"
    if isinstance(predicate, P.Not):
        return f"¬({_mathy_predicate(predicate.operand)})"
    if isinstance(predicate, P.TruePred):
        return "true"
    if isinstance(predicate, P.FalsePred):
        return "false"
    if isinstance(predicate, P.IsNull):
        return f"isnull({_mathy_scalar(predicate.operand)})"
    raise TypeError(f"cannot render predicate {predicate!r}")


def render_mathy(expr: E.Expression) -> str:
    """Blackboard-notation rendering (σ, π, ⋈, ⋉, ⊳) for reports."""
    if isinstance(expr, E.RelationRef):
        return expr.name
    if isinstance(expr, E.Delta):
        sign = "⁺" if expr.kind == E.DELTA_PLUS else "⁻"
        return f"Δ{sign}{expr.relation}"
    if isinstance(expr, E.Select):
        return f"σ[{_mathy_predicate(expr.predicate)}]({render_mathy(expr.input)})"
    if isinstance(expr, E.Project):
        items = ",".join(_mathy_scalar(item.expr) for item in expr.items)
        return f"π[{items}]({render_mathy(expr.input)})"
    if isinstance(expr, E.Union):
        return f"({render_mathy(expr.left)} ∪ {render_mathy(expr.right)})"
    if isinstance(expr, E.Difference):
        return f"({render_mathy(expr.left)} − {render_mathy(expr.right)})"
    if isinstance(expr, E.Intersection):
        return f"({render_mathy(expr.left)} ∩ {render_mathy(expr.right)})"
    if isinstance(expr, E.Product):
        return f"({render_mathy(expr.left)} × {render_mathy(expr.right)})"
    if isinstance(expr, E.Join):
        return (
            f"({render_mathy(expr.left)} ⋈[{_mathy_predicate(expr.predicate)}] "
            f"{render_mathy(expr.right)})"
        )
    if isinstance(expr, E.SemiJoin):
        return (
            f"({render_mathy(expr.left)} ⋉[{_mathy_predicate(expr.predicate)}] "
            f"{render_mathy(expr.right)})"
        )
    if isinstance(expr, E.AntiJoin):
        return (
            f"({render_mathy(expr.left)} ⊳[{_mathy_predicate(expr.predicate)}] "
            f"{render_mathy(expr.right)})"
        )
    if isinstance(expr, E.Rename):
        return f"ρ[{expr.name}]({render_mathy(expr.input)})"
    if isinstance(expr, E.Aggregate):
        return f"{expr.func}({render_mathy(expr.input)}, {expr.attr})"
    if isinstance(expr, E.Count):
        return f"CNT({render_mathy(expr.input)})"
    if isinstance(expr, E.Multiplicity):
        return f"MLT({render_mathy(expr.input)})"
    if isinstance(expr, E.Literal):
        return render_expression(expr)
    raise TypeError(f"cannot render expression {expr!r}")


def render_mathy_statement(statement: S.Statement) -> str:
    """Blackboard-notation rendering of a statement (for Table 1 rows)."""
    if isinstance(statement, S.Alarm):
        return f"alarm({render_mathy(statement.expr)})"
    if isinstance(statement, S.Assign):
        return f"{statement.name} := {render_mathy(statement.expr)}"
    if isinstance(statement, S.Insert):
        return f"insert({statement.relation}, {render_mathy(statement.expr)})"
    if isinstance(statement, S.Delete):
        return f"delete({statement.relation}, {render_mathy(statement.expr)})"
    if isinstance(statement, S.Abort):
        return "abort"
    return render_statement(statement)
