"""Compile algebra expressions into cached physical query plans.

This module is the bridge between the declarative layer (expression trees
produced by parsing or by the calculus-to-algebra translation of Section
5.2.2) and the physical operators of :mod:`repro.algebra.physical`:

* :func:`compile_expression` lowers an expression — after running the
  always-safe rewrites of :mod:`repro.algebra.optimizer` — into a physical
  operator DAG, splitting join predicates into hash keys and recognizing
  index-accelerable shapes once, at plan time;
* :func:`get_plan` adds a **structural plan cache**: expression nodes are
  frozen dataclasses with structural equality, so every occurrence of the
  same expression (a static-mode integrity rule appended to thousands of
  transactions, the selection an ``update`` statement re-creates on every
  execution) shares one compiled plan;
* :func:`evaluate` is the engine switch: ``engine="planned"`` (the default)
  executes the compiled plan, ``engine="naive"`` runs the reference
  tree-walk interpreter — keeping the two differentially testable;
* :func:`estimate_expression` exposes the planner's static cardinality/work
  estimates, which the parallel cost model consumes;
* :func:`plan_estimate` upgrades those estimates with *runtime statistics*
  captured from a live database (observed cardinalities and index
  distinct-key counts, :mod:`repro.algebra.statistics`), caching the result
  per expression and invalidating it when the observed cardinalities drift
  past a threshold factor;
* :func:`index_hints` reports which base-relation hash indexes would
  accelerate a plan (the integrity controller turns these into real indexes
  via :meth:`~repro.core.subsystem.IntegrityController.install_indexes`).

Engine resolution order for :func:`evaluate`: the explicit ``engine``
argument, then the evaluation context's ``engine`` attribute, then the
module default (:func:`set_default_engine`).
"""

from __future__ import annotations

import weakref
from typing import Iterator, Optional

from repro.algebra import expressions as E
from repro.algebra import physical as X
from repro.algebra import predicates as P
from repro.algebra.expressions import _split_equi_predicate
from repro.algebra.optimizer import optimize_expression
from repro.engine.relation import Relation
from repro.errors import EvaluationError

ENGINES = ("naive", "planned")

_default_engine = "planned"

# Structural plan cache: Expression -> PhysicalOperator.  Bounded FIFO —
# integrity programs and statement shapes are few; unbounded literal-heavy
# workloads must not grow it without limit.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_LIMIT = 1024
_plan_cache_hits = 0
_plan_cache_misses = 0


def set_default_engine(engine: str) -> None:
    """Set the process-wide default evaluation backend."""
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    _default_engine = engine


def get_default_engine() -> str:
    return _default_engine


def resolve_engine(context=None, engine: Optional[str] = None) -> str:
    """The backend to use: explicit arg, context attribute, then default."""
    if engine is None:
        engine = getattr(context, "engine", None)
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    return engine


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _const_equalities(predicate: P.Predicate):
    """Split a unary predicate into column=constant keys and a residual.

    Returns ``(attrs, values, residual)``; NULL constants stay in the
    residual (NULL compares *unknown*, an index bucket would match it).
    """
    from repro.engine.types import NULL

    attrs: list = []
    values: list = []
    residual: list = []

    def visit(node: P.Predicate) -> None:
        if isinstance(node, P.And):
            visit(node.left)
            visit(node.right)
            return
        if isinstance(node, P.Comparison) and node.op == "=":
            left, right = node.left, node.right
            if isinstance(right, P.ColRef) and isinstance(left, P.Const):
                left, right = right, left
            if (
                isinstance(left, P.ColRef)
                and left.side in (None, "left")
                and isinstance(right, P.Const)
                and right.value is not NULL
                and left.attr not in attrs
            ):
                attrs.append(left.attr)
                values.append(right.value)
                return
        residual.append(node)

    visit(predicate)
    residual_pred = P.conjoin(*residual) if residual else P.TRUE
    return tuple(attrs), tuple(values), residual_pred


def compile_expression(
    expression: E.Expression, optimize: bool = True
) -> X.PhysicalOperator:
    """Lower an expression tree into a physical operator DAG."""
    if optimize:
        expression = optimize_expression(expression)
    return _lower(expression)


def _lower(expr: E.Expression) -> X.PhysicalOperator:
    if isinstance(expr, E.RelationRef):
        return X.ScanOp(expr.name)
    if isinstance(expr, E.Delta):
        return X.DeltaScanOp(expr.relation, expr.kind)
    if isinstance(expr, E.Literal):
        return X.LiteralOp(expr.rows)
    if isinstance(expr, E.Select):
        child = _lower(expr.input)
        if isinstance(child, X.ScanOp):
            attrs, values, residual = _const_equalities(expr.predicate)
            if attrs:
                return X.IndexSelectOp(
                    child.name, attrs, values, residual, expr.predicate
                )
        return X.FilterOp(child, expr.predicate)
    if isinstance(expr, E.Project):
        return X.ProjectOp(_lower(expr.input), expr.items)
    if isinstance(expr, E.Union):
        return X.UnionOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Difference):
        return X.DifferenceOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Intersection):
        return X.IntersectOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Product):
        return X.ProductOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Join):
        left_keys, right_keys, residual = _split_equi_predicate(expr.predicate)
        left = _lower(expr.left)
        right = _lower(expr.right)
        if left_keys:
            return X.HashJoinOp(left, right, left_keys, right_keys, residual)
        return X.NestedLoopJoinOp(left, right, expr.predicate)
    if isinstance(expr, (E.SemiJoin, E.AntiJoin)):
        anti = isinstance(expr, E.AntiJoin)
        left_keys, right_keys, residual = _split_equi_predicate(expr.predicate)
        left = _lower(expr.left)
        right = _lower(expr.right)
        if left_keys:
            # Unlike the naive backend, a residual does not force nested
            # loops: the residual is tested within hash buckets only.
            ctor = X.HashAntiJoinOp if anti else X.HashSemiJoinOp
            return ctor(left, right, left_keys, right_keys, residual)
        ctor = X.NestedLoopAntiOp if anti else X.NestedLoopSemiOp
        return ctor(left, right, expr.predicate)
    if isinstance(expr, E.Rename):
        return X.RenameOp(_lower(expr.input), expr.name, expr.attributes)
    if isinstance(expr, E.Aggregate):
        return X.AggregateOp(_lower(expr.input), expr.func, expr.attr)
    if isinstance(expr, E.Count):
        return X.CountOp(_lower(expr.input))
    if isinstance(expr, E.Multiplicity):
        return X.MultiplicityOp(_lower(expr.input))
    raise EvaluationError(f"cannot lower expression node {expr!r}")


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------


def _is_cache_exempt(expression: E.Expression) -> bool:
    """Trivial plans that would churn the cache rather than benefit from it.

    Bare leaves, and the ``Rename(leaf)`` shape every ``Assign`` statement
    wraps around its value — distinct literal insert/assign batches must not
    FIFO-evict the integrity rules' precompiled plans.
    """
    if isinstance(expression, (E.RelationRef, E.Delta, E.Literal)):
        return True
    return isinstance(expression, E.Rename) and isinstance(
        expression.input, (E.RelationRef, E.Delta, E.Literal)
    )


def get_plan(expression: E.Expression) -> X.PhysicalOperator:
    """The cached physical plan of ``expression`` (compiling on miss)."""
    global _plan_cache_hits, _plan_cache_misses
    if _is_cache_exempt(expression):
        return _lower(expression)
    plan = _PLAN_CACHE.get(expression)
    if plan is not None:
        _plan_cache_hits += 1
        return plan
    _plan_cache_misses += 1
    plan = compile_expression(expression)
    if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[expression] = plan
    return plan


def clear_plan_cache() -> None:
    global _plan_cache_hits, _plan_cache_misses
    _PLAN_CACHE.clear()
    _ESTIMATE_CACHE.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def plan_cache_info() -> dict:
    return {
        "size": len(_PLAN_CACHE),
        "hits": _plan_cache_hits,
        "misses": _plan_cache_misses,
        "limit": _PLAN_CACHE_LIMIT,
        "estimates": sum(len(per) for per in _ESTIMATE_CACHE.values()),
    }


# ---------------------------------------------------------------------------
# Evaluation entry point (the engine switch)
# ---------------------------------------------------------------------------


def evaluate(
    expression: E.Expression, context, engine: Optional[str] = None
) -> Relation:
    """Evaluate ``expression`` with the selected backend."""
    if resolve_engine(context, engine) == "naive":
        return expression.evaluate(context)
    return get_plan(expression).execute(context)


def explain(expression: E.Expression) -> str:
    """The compiled physical plan of an expression, as indented text."""
    return get_plan(expression).explain()


# ---------------------------------------------------------------------------
# Program-level helpers (definition-time compilation, index advice)
# ---------------------------------------------------------------------------


def statement_expressions(statement) -> Iterator[E.Expression]:
    """The relation-valued expressions a statement will evaluate."""
    expr = getattr(statement, "expr", None)
    if isinstance(expr, E.Expression):
        yield expr


def precompile_program(program) -> int:
    """Warm the plan cache for every expression of a program.

    Called at rule-definition time (static mode, §6.2) so constraint
    enforcement never pays lowering costs inside a transaction.  Returns
    the number of plans compiled or refreshed.
    """
    count = 0
    for statement in program:
        for expression in statement_expressions(statement):
            get_plan(expression)
            count += 1
    return count


def index_hints(expression: E.Expression) -> set:
    """(relation, attrs) pairs whose hash indexes would speed this plan up.

    Reported for the probe and build sides of hash semi/antijoins, the
    build side of hash joins, and equality selections — whenever that side
    is a direct scan of a named relation and the keys are plain columns.
    Auxiliary differentials (``R@plus``/``R@minus``) are skipped: they are
    rebuilt per transaction, so a persistent index can never exist.
    """
    hints: set = set()
    _collect_hints(get_plan(expression), hints)
    return {(name, attrs) for name, attrs in hints if "@" not in name}


def _collect_hints(op: X.PhysicalOperator, hints: set) -> None:
    if isinstance(op, X.HashSemiJoinOp):  # covers HashAntiJoinOp too
        left_attrs = op.left_keys.attrs
        right_attrs = op.right_keys.attrs
        if isinstance(op.left, X.ScanOp) and left_attrs:
            hints.add((op.left.name, left_attrs))
        if isinstance(op.right, X.ScanOp) and right_attrs:
            hints.add((op.right.name, right_attrs))
    elif isinstance(op, X.HashJoinOp):
        right_attrs = op.right_keys.attrs
        if isinstance(op.right, X.ScanOp) and right_attrs:
            hints.add((op.right.name, right_attrs))
    elif isinstance(op, X.IndexSelectOp):
        hints.add((op.name, tuple(op.attrs)))
    for child in op.children():
        _collect_hints(child, hints)


def estimate_expression(
    expression: E.Expression, cardinalities=None
) -> X.PlanEstimate:
    """The planner's static estimate for evaluating ``expression``.

    ``cardinalities`` maps relation names to tuple counts (e.g. from
    :meth:`repro.engine.database.Database.cardinalities`) or is a
    :class:`~repro.algebra.statistics.RuntimeStatistics` snapshot, whose
    distinct-key counts additionally sharpen equality/join selectivities;
    absent names assume :data:`repro.algebra.physical.DEFAULT_CARDINALITY`.
    """
    return get_plan(expression).estimate(cardinalities)


# Estimate cache, held weakly per Database instance (estimates computed
# under one database's statistics must never answer for another):
# Database -> {Expression: (RuntimeStatistics snapshot, PlanEstimate)}.
# Entries are reused until the observed statistics drift past the
# threshold factor, then recomputed under a fresh snapshot.
_ESTIMATE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_ESTIMATE_CACHE_LIMIT = 1024


def plan_estimate(
    expression: E.Expression, database, drift_threshold: Optional[float] = None
) -> X.PlanEstimate:
    """Estimate ``expression`` under the database's *observed* statistics.

    Captures a :class:`~repro.algebra.statistics.RuntimeStatistics` snapshot
    (cardinalities + built-index distinct keys), and caches the resulting
    estimate per (database, expression).  The cached estimate is served
    until the observed statistics drift past ``drift_threshold`` (default
    :data:`repro.algebra.statistics.DRIFT_THRESHOLD`), at which point it is
    recomputed — the runtime-statistics feedback loop the fixed textbook
    selectivities of PR 1 lacked.
    """
    from repro.algebra.statistics import DRIFT_THRESHOLD, RuntimeStatistics

    if drift_threshold is None:
        drift_threshold = DRIFT_THRESHOLD
    stats = RuntimeStatistics.capture(database)
    per_database = _ESTIMATE_CACHE.get(database)
    if per_database is None:
        per_database = {}
        _ESTIMATE_CACHE[database] = per_database
    cached = per_database.get(expression)
    if cached is not None and not cached[0].drifted(stats, drift_threshold):
        return cached[1]
    estimate = get_plan(expression).estimate(stats)
    if len(per_database) >= _ESTIMATE_CACHE_LIMIT:
        per_database.pop(next(iter(per_database)))
    per_database[expression] = (stats, estimate)
    return estimate
