"""Compile algebra expressions into cached physical query plans.

This module is the bridge between the declarative layer (expression trees
produced by parsing or by the calculus-to-algebra translation of Section
5.2.2) and the physical operators of :mod:`repro.algebra.physical`:

* :func:`compile_expression` lowers an expression — after running the
  always-safe rewrites of :mod:`repro.algebra.optimizer` — into a physical
  operator DAG, splitting join predicates into hash keys and recognizing
  index-accelerable shapes once, at plan time;
* :func:`get_plan` adds a **structural plan cache**: expression nodes are
  frozen dataclasses with structural equality, so every occurrence of the
  same expression (a static-mode integrity rule appended to thousands of
  transactions, the selection an ``update`` statement re-creates on every
  execution) shares one compiled plan;
* :func:`evaluate` is the engine switch: ``engine="planned"`` (the default)
  executes the compiled plan, ``engine="naive"`` runs the reference
  tree-walk interpreter — keeping the two differentially testable;
* :func:`estimate_expression` exposes the planner's static cardinality/work
  estimates, which the parallel cost model consumes;
* :func:`plan_estimate` upgrades those estimates with *runtime statistics*
  captured from a live database (observed cardinalities and index
  distinct-key counts, :mod:`repro.algebra.statistics`), caching the result
  per expression and invalidating it when the observed cardinalities drift
  past a threshold factor;
* :func:`index_hints` reports which base-relation hash indexes would
  accelerate a plan (the integrity controller turns these into real indexes
  via :meth:`~repro.core.subsystem.IntegrityController.install_indexes`);
* :func:`reorder_chains` / :func:`reordered_expression` implement greedy
  cost-based reordering of semijoin/antijoin and equi-join chains under
  observed statistics — the planned backend applies it automatically when
  the evaluation context exposes a database.

Engine resolution order for :func:`evaluate`: the explicit ``engine``
argument, then the evaluation context's ``engine`` attribute, then the
module default (:func:`set_default_engine`).
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Iterator, Optional

from repro.algebra import expressions as E
from repro.algebra import physical as X
from repro.algebra import predicates as P
from repro.algebra.expressions import _split_equi_predicate
from repro.algebra.optimizer import optimize_expression
from repro.engine.relation import Relation
from repro.errors import EvaluationError

ENGINES = ("naive", "planned")

_default_engine = "planned"

# Structural plan cache: Expression -> PhysicalOperator.  Bounded FIFO —
# integrity programs and statement shapes are few; unbounded literal-heavy
# workloads must not grow it without limit.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_LIMIT = 1024
_plan_cache_hits = 0
_plan_cache_misses = 0


def set_default_engine(engine: str) -> None:
    """Set the process-wide default evaluation backend."""
    global _default_engine
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    _default_engine = engine


def get_default_engine() -> str:
    return _default_engine


def resolve_engine(context=None, engine: Optional[str] = None) -> str:
    """The backend to use: explicit arg, context attribute, then default."""
    if engine is None:
        engine = getattr(context, "engine", None)
    if engine is None:
        return _default_engine
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}")
    return engine


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _const_equalities(predicate: P.Predicate):
    """Split a unary predicate into column=constant keys and a residual.

    Returns ``(attrs, values, residual)``; NULL constants stay in the
    residual (NULL compares *unknown*, an index bucket would match it).
    """
    from repro.engine.types import NULL

    attrs: list = []
    values: list = []
    residual: list = []

    def visit(node: P.Predicate) -> None:
        if isinstance(node, P.And):
            visit(node.left)
            visit(node.right)
            return
        if isinstance(node, P.Comparison) and node.op == "=":
            left, right = node.left, node.right
            if isinstance(right, P.ColRef) and isinstance(left, P.Const):
                left, right = right, left
            if (
                isinstance(left, P.ColRef)
                and left.side in (None, "left")
                and isinstance(right, P.Const)
                and right.value is not NULL
                and left.attr not in attrs
            ):
                attrs.append(left.attr)
                values.append(right.value)
                return
        residual.append(node)

    visit(predicate)
    residual_pred = P.conjoin(*residual) if residual else P.TRUE
    return tuple(attrs), tuple(values), residual_pred


def compile_expression(
    expression: E.Expression, optimize: bool = True
) -> X.PhysicalOperator:
    """Lower an expression tree into a physical operator DAG.

    Lowering also forms fused pipeline regions (:func:`~repro.algebra.
    physical.fuse_pipelines` — maximal select/project chains over a
    scan/join/semijoin source execute as one batch kernel) and decides,
    per operator, whether the whole-column batch path is worth taking
    (:func:`~repro.algebra.physical.annotate_batch_eligibility`):
    operators whose estimated input cardinality clears the batch floor
    get flagged before the plan is published to the (shared, concurrently
    executed) plan cache; Δ-scans price at |Δ| and stay row-at-a-time,
    and Δ-sourced regions likewise stay unfused.
    """
    if optimize:
        expression = optimize_expression(expression)
    plan = X.fuse_pipelines(_lower(expression))
    X.annotate_batch_eligibility(plan)
    return plan


def _lower(expr: E.Expression) -> X.PhysicalOperator:
    if isinstance(expr, E.RelationRef):
        return X.ScanOp(expr.name)
    if isinstance(expr, E.Delta):
        return X.DeltaScanOp(expr.relation, expr.kind)
    if isinstance(expr, E.Literal):
        return X.LiteralOp(expr.rows)
    if isinstance(expr, E.Select):
        child = _lower(expr.input)
        if isinstance(child, X.ScanOp):
            attrs, values, residual = _const_equalities(expr.predicate)
            if attrs:
                return X.IndexSelectOp(
                    child.name, attrs, values, residual, expr.predicate
                )
        return X.FilterOp(child, expr.predicate)
    if isinstance(expr, E.Project):
        return X.ProjectOp(_lower(expr.input), expr.items)
    if isinstance(expr, E.Union):
        return X.UnionOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Difference):
        return X.DifferenceOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Intersection):
        return X.IntersectOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Product):
        return X.ProductOp(_lower(expr.left), _lower(expr.right))
    if isinstance(expr, E.Join):
        left_keys, right_keys, residual = _split_equi_predicate(expr.predicate)
        left = _lower(expr.left)
        right = _lower(expr.right)
        if left_keys:
            return X.HashJoinOp(left, right, left_keys, right_keys, residual)
        return X.NestedLoopJoinOp(left, right, expr.predicate)
    if isinstance(expr, (E.SemiJoin, E.AntiJoin)):
        anti = isinstance(expr, E.AntiJoin)
        left_keys, right_keys, residual = _split_equi_predicate(expr.predicate)
        left = _lower(expr.left)
        right = _lower(expr.right)
        if left_keys:
            # Unlike the naive backend, a residual does not force nested
            # loops: the residual is tested within hash buckets only.
            ctor = X.HashAntiJoinOp if anti else X.HashSemiJoinOp
            return ctor(left, right, left_keys, right_keys, residual)
        ctor = X.NestedLoopAntiOp if anti else X.NestedLoopSemiOp
        return ctor(left, right, expr.predicate)
    if isinstance(expr, E.Rename):
        return X.RenameOp(_lower(expr.input), expr.name, expr.attributes)
    if isinstance(expr, E.Aggregate):
        return X.AggregateOp(_lower(expr.input), expr.func, expr.attr)
    if isinstance(expr, E.Count):
        return X.CountOp(_lower(expr.input))
    if isinstance(expr, E.Multiplicity):
        return X.MultiplicityOp(_lower(expr.input))
    raise EvaluationError(f"cannot lower expression node {expr!r}")


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------


def _is_cache_exempt(expression: E.Expression) -> bool:
    """Trivial plans that would churn the cache rather than benefit from it.

    Bare leaves, and the ``Rename(leaf)`` shape every ``Assign`` statement
    wraps around its value — distinct literal insert/assign batches must not
    FIFO-evict the integrity rules' precompiled plans.
    """
    if isinstance(expression, (E.RelationRef, E.Delta, E.Literal)):
        return True
    return isinstance(expression, E.Rename) and isinstance(
        expression.input, (E.RelationRef, E.Delta, E.Literal)
    )


def get_plan(expression: E.Expression) -> X.PhysicalOperator:
    """The cached physical plan of ``expression`` (compiling on miss)."""
    global _plan_cache_hits, _plan_cache_misses
    if _is_cache_exempt(expression):
        return _lower(expression)
    plan = _PLAN_CACHE.get(expression)
    if plan is not None:
        _plan_cache_hits += 1
        return plan
    _plan_cache_misses += 1
    plan = compile_expression(expression)
    if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[expression] = plan
    return plan


def clear_plan_cache() -> None:
    global _plan_cache_hits, _plan_cache_misses
    _PLAN_CACHE.clear()
    _ESTIMATE_CACHE.clear()
    _REORDER_CACHE.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def plan_cache_info() -> dict:
    return {
        "size": len(_PLAN_CACHE),
        "hits": _plan_cache_hits,
        "misses": _plan_cache_misses,
        "limit": _PLAN_CACHE_LIMIT,
        "estimates": sum(len(per) for per in _ESTIMATE_CACHE.values()),
    }


# ---------------------------------------------------------------------------
# Cost-based chain reordering
# ---------------------------------------------------------------------------
#
# The planner lowers expression trees as written; these rewrites reorder the
# two chain shapes where order is a pure cost choice:
#
# * **semijoin/antijoin chains** ``(A ⋉ B₁) ⊳ B₂ ⋉ …`` — every op filters A,
#   so any permutation is equivalent (set and bag mode, any predicates);
#   the greedy order applies the cheapest right side first.
# * **equi-join chains** ``((I₀ ⋈ I₁) ⋈ I₂) ⋈ …`` — reordered greedily by
#   estimated intermediate cardinality, under conditions that make the
#   rewrite exactly result-preserving: I₀ stays the first (probe) input so
#   the pinned build-over-distinct-rows bag convention yields identical
#   multiplicities, every predicate column reference is a name that is
#   unique across all chain inputs (so re-splitting conjuncts across the
#   new join order cannot capture the wrong column), only *connected*
#   inputs are joined (never introduces products), and a final projection
#   restores the original column order.
#
# Anything that fails a precondition is left exactly as written.


def _plan_rows(expr: E.Expression, statistics) -> float:
    return get_plan(expr).estimate(statistics).rows


def _has_chain(expr: E.Expression) -> bool:
    """Structurally: is there any reorderable chain anywhere in the tree?"""
    if isinstance(expr, (E.SemiJoin, E.AntiJoin)) and isinstance(
        expr.left, (E.SemiJoin, E.AntiJoin)
    ):
        return True
    if isinstance(expr, E.Join) and isinstance(expr.left, E.Join):
        return True
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, E.Expression) and _has_chain(value):
            return True
    return False


def _visible_columns(expr: E.Expression, schema) -> Optional[tuple]:
    """The output attribute names of ``expr``, or None when not statically
    derivable (temporaries, computed projections, ambiguous concatenations).
    """
    from repro.engine import naming

    if isinstance(expr, E.RelationRef):
        try:
            base, _suffix = naming.split_auxiliary(expr.name)
        except ValueError:
            return None
        if base not in schema:
            return None
        return tuple(attr.name for attr in schema.relation(base).attributes)
    if isinstance(expr, E.Delta):
        if expr.relation not in schema:
            return None
        return tuple(
            attr.name for attr in schema.relation(expr.relation).attributes
        )
    if isinstance(expr, E.Rename):
        if expr.attributes is not None:
            return tuple(expr.attributes)
        return _visible_columns(expr.input, schema)
    if isinstance(expr, E.Select):
        return _visible_columns(expr.input, schema)
    if isinstance(expr, (E.SemiJoin, E.AntiJoin)):
        return _visible_columns(expr.left, schema)
    if isinstance(expr, (E.Union, E.Difference, E.Intersection)):
        return _visible_columns(expr.left, schema)
    if isinstance(expr, E.Project):
        names = []
        for item in expr.items:
            if item.name is not None:
                names.append(item.name)
            elif isinstance(item.expr, P.ColRef) and isinstance(
                item.expr.attr, str
            ):
                names.append(item.expr.attr)
            else:
                return None
        return tuple(names)
    if isinstance(expr, (E.Join, E.Product)):
        left = _visible_columns(expr.left, schema)
        right = _visible_columns(expr.right, schema)
        if left is None or right is None:
            return None
        combined = left + right
        if len(set(combined)) != len(combined):  # would be uniquified
            return None
        return combined
    return None


def _conjuncts(predicate: P.Predicate) -> list:
    parts: list = []

    def visit(node: P.Predicate) -> None:
        if isinstance(node, P.And):
            visit(node.left)
            visit(node.right)
        else:
            parts.append(node)

    visit(predicate)
    return parts


def _named_refs(node) -> Optional[list]:
    """All ColRefs in a predicate/scalar tree, or None when any is
    positional or the tree contains an unrecognized node kind."""
    refs: list = []

    def visit(item) -> bool:
        if isinstance(item, P.ColRef):
            if not isinstance(item.attr, str):
                return False
            refs.append(item)
            return True
        if isinstance(item, P.Const) or isinstance(
            item, (P.TruePred, P.FalsePred)
        ):
            return True
        if isinstance(item, P.Arith):
            return visit(item.left) and visit(item.right)
        if isinstance(item, P.Comparison):
            return visit(item.left) and visit(item.right)
        if isinstance(item, (P.And, P.Or)):
            return visit(item.left) and visit(item.right)
        if isinstance(item, P.Not):
            return visit(item.operand)
        if isinstance(item, P.IsNull):
            return visit(item.operand)
        return False

    if not visit(node):
        return None
    return refs


def _retag_sides(node, owner_of: dict, right_input: int):
    """Rewrite every ColRef's side for a new join position: references to
    ``right_input``'s columns become ``right``, everything else ``left``."""
    if isinstance(node, P.ColRef):
        side = "right" if owner_of[node.attr] == right_input else "left"
        return P.ColRef(node.attr, side)
    if isinstance(node, P.Arith):
        return P.Arith(
            node.op,
            _retag_sides(node.left, owner_of, right_input),
            _retag_sides(node.right, owner_of, right_input),
        )
    if isinstance(node, P.Comparison):
        return P.Comparison(
            node.op,
            _retag_sides(node.left, owner_of, right_input),
            _retag_sides(node.right, owner_of, right_input),
        )
    if isinstance(node, P.And):
        return P.And(
            _retag_sides(node.left, owner_of, right_input),
            _retag_sides(node.right, owner_of, right_input),
        )
    if isinstance(node, P.Or):
        return P.Or(
            _retag_sides(node.left, owner_of, right_input),
            _retag_sides(node.right, owner_of, right_input),
        )
    if isinstance(node, P.Not):
        return P.Not(_retag_sides(node.operand, owner_of, right_input))
    if isinstance(node, P.IsNull):
        return P.IsNull(_retag_sides(node.operand, owner_of, right_input))
    return node


def _reorder_semi_chain(
    expr: E.Expression, statistics, schema
) -> E.Expression:
    """Reorder a semijoin/antijoin chain cheapest-right-side-first."""
    ops = []
    node = expr
    while isinstance(node, (E.SemiJoin, E.AntiJoin)):
        ops.append((type(node), node.right, node.predicate))
        node = node.left
    ops.reverse()
    base = _reorder(node, statistics, schema)
    ops = [
        (ctor, _reorder(right, statistics, schema), predicate)
        for ctor, right, predicate in ops
    ]
    if len(ops) >= 2:
        order = sorted(
            range(len(ops)),
            key=lambda i: (_plan_rows(ops[i][1], statistics), i),
        )
    else:
        order = range(len(ops))
    for i in order:
        ctor, right, predicate = ops[i]
        base = ctor(base, right, predicate)
    return base


def _reorder_join_chain(
    expr: E.Join, statistics, schema
) -> Optional[E.Expression]:
    """Greedy reorder of a left-deep equi-join chain; None when any
    precondition fails (caller falls back to per-child recursion)."""
    inputs: list = []
    predicates: list = []
    node: E.Expression = expr
    while isinstance(node, E.Join):
        predicates.append(node.predicate)
        inputs.append(node.right)
        node = node.left
    inputs.append(node)
    inputs.reverse()
    predicates.reverse()
    if len(inputs) < 3 or schema is None:
        return None
    columns = [_visible_columns(item, schema) for item in inputs]
    if any(cols is None for cols in columns):
        return None
    owner_of: dict = {}
    for index, cols in enumerate(columns):
        for name in cols:
            if name in owner_of:
                return None  # ambiguous name across inputs
            owner_of[name] = index
    # Decompose every join predicate into conjuncts tagged with the set of
    # inputs they reference.
    conjuncts: list = []  # (predicate, frozenset(input indexes))
    for position, predicate in enumerate(predicates):
        right_input = position + 1
        for conjunct in _conjuncts(predicate):
            refs = _named_refs(conjunct)
            if refs is None:
                return None
            touched = set()
            for ref in refs:
                if ref.side == "right":
                    owner = owner_of.get(ref.attr)
                    if owner != right_input:
                        return None
                else:
                    owner = owner_of.get(ref.attr)
                    if owner is None or owner > position:
                        return None
                touched.add(owner)
            conjuncts.append((conjunct, frozenset(touched)))
    # Greedy order: I0 stays first (bag multiplicities follow the probe
    # side); among connected candidates, minimize the estimated joined size
    # (|L|·|R| / max V over the linking equality keys when a distinct-key
    # count is observed, the containment max(|L|, |R|) guess otherwise).
    def _joined_estimate(current: float, j: int, placed: set) -> float:
        distinct = []
        for conjunct, touched in conjuncts:
            if j not in touched or not (touched - {j} <= placed | {j}):
                continue
            if not (
                isinstance(conjunct, P.Comparison)
                and conjunct.op == "="
                and isinstance(conjunct.left, P.ColRef)
                and isinstance(conjunct.right, P.ColRef)
            ):
                continue
            for ref in (conjunct.left, conjunct.right):
                owner = owner_of[ref.attr]
                if owner not in placed | {j}:
                    continue
                source = inputs[owner]
                if isinstance(source, E.RelationRef):
                    value = X._distinct_keys(
                        statistics, source.name, (ref.attr,)
                    )
                    if value:
                        distinct.append(value)
        if distinct:
            return max(current * rows[j] / max(distinct), 1.0)
        return max(current, rows[j], 1.0)

    rows = [_plan_rows(item, statistics) for item in inputs]
    placed = {0}
    order = [0]
    current = rows[0]
    remaining = set(range(1, len(inputs)))
    while remaining:
        best = None
        for j in remaining:
            linked = any(
                j in touched and (touched - {j}) and (touched - {j}) <= placed
                for _pred, touched in conjuncts
            )
            if not linked:
                continue
            estimate = _joined_estimate(current, j, placed)
            if best is None or estimate < best[0] or (
                estimate == best[0] and j < best[1]
            ):
                best = (estimate, j)
        if best is None:
            return None  # disconnected: would introduce a product
        current, j = best
        order.append(j)
        placed.add(j)
        remaining.discard(j)
    reordered_inputs = [_reorder(item, statistics, schema) for item in inputs]
    if order == list(range(len(inputs))):
        # Identity order: rebuild the spine as written (children may have
        # been rewritten), no projection needed.
        node = reordered_inputs[0]
        for position, predicate in enumerate(predicates):
            node = E.Join(node, reordered_inputs[position + 1], predicate)
        return node
    used = [False] * len(conjuncts)
    node = reordered_inputs[order[0]]
    placed = {order[0]}
    for j in order[1:]:
        available = placed | {j}
        parts = []
        for index, (conjunct, touched) in enumerate(conjuncts):
            if not used[index] and touched <= available:
                parts.append(_retag_sides(conjunct, owner_of, j))
                used[index] = True
        node = E.Join(node, reordered_inputs[j], P.conjoin(*parts))
        placed.add(j)
    if not all(used):  # pragma: no cover — placement covers all by greed
        return None
    # Restore the original column order (names are globally unique, so the
    # projection re-emits each source column under its own name).
    items = tuple(
        E.ProjectItem(P.ColRef(name)) for cols in columns for name in cols
    )
    return E.Project(node, items)


def _reorder(expr: E.Expression, statistics, schema) -> E.Expression:
    if isinstance(expr, (E.SemiJoin, E.AntiJoin)):
        return _reorder_semi_chain(expr, statistics, schema)
    if isinstance(expr, E.Join) and isinstance(expr.left, E.Join):
        out = _reorder_join_chain(expr, statistics, schema)
        if out is not None:
            return out
    changes = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, E.Expression):
            replacement = _reorder(value, statistics, schema)
            if replacement is not value:
                changes[field.name] = replacement
    if changes:
        return dataclasses.replace(expr, **changes)
    return expr


def reorder_chains(
    expression: E.Expression, statistics, schema=None
) -> E.Expression:
    """Greedy cost-based reordering of join/semijoin chains.

    ``statistics`` is anything :meth:`PhysicalOperator.estimate` accepts
    (a ``{name: cardinality}`` mapping or a
    :class:`~repro.algebra.statistics.RuntimeStatistics` snapshot, whose
    distinct-key counts sharpen the pairwise join estimates); ``schema`` is
    the :class:`~repro.engine.schema.DatabaseSchema` used to resolve
    column ownership for join-chain rewrites (without it only
    semijoin/antijoin chains — which need no schema — are reordered).
    Always returns an expression that evaluates to the same relation.
    """
    return _reorder(expression, statistics, schema)


# Reorder cache, held weakly per Database: Database -> {Expression:
# (RuntimeStatistics snapshot | None, Expression)}.  A ``None`` snapshot
# marks a chain-free expression — its entry never drifts.
_REORDER_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_REORDER_CACHE_LIMIT = 1024


def reordered_expression(
    expression: E.Expression, database, drift_threshold: Optional[float] = None
) -> E.Expression:
    """``expression`` with chains reordered under the database's observed
    statistics, cached per (database, expression) with drift invalidation
    (the same pattern as :func:`plan_estimate`)."""
    from repro.algebra.statistics import DRIFT_THRESHOLD, RuntimeStatistics

    per_database = _REORDER_CACHE.get(database)
    if per_database is None:
        per_database = {}
        _REORDER_CACHE[database] = per_database
    cached = per_database.get(expression)
    if cached is not None and cached[0] is None:
        return cached[1]
    if drift_threshold is None:
        drift_threshold = DRIFT_THRESHOLD
    stats = RuntimeStatistics.capture(database)
    if cached is not None and not cached[0].drifted(stats, drift_threshold):
        return cached[1]
    if _has_chain(expression):
        result = (stats, reorder_chains(expression, stats, database.schema))
    else:
        result = (None, expression)
    if len(per_database) >= _REORDER_CACHE_LIMIT:
        per_database.pop(next(iter(per_database)))
    per_database[expression] = result
    return result[1]


# ---------------------------------------------------------------------------
# Evaluation entry point (the engine switch)
# ---------------------------------------------------------------------------


def evaluate(
    expression: E.Expression, context, engine: Optional[str] = None
) -> Relation:
    """Evaluate ``expression`` with the selected backend.

    The planned backend additionally reorders join/semijoin chains under
    the context database's observed statistics (cached, drift-invalidated)
    before fetching the compiled plan; the naive backend evaluates the
    expression exactly as written.
    """
    if resolve_engine(context, engine) == "naive":
        return expression.evaluate(context)
    if not _is_cache_exempt(expression):
        database = getattr(context, "database", None)
        if database is not None:
            expression = reordered_expression(expression, database)
    return get_plan(expression).execute(context)


def explain(expression: E.Expression) -> str:
    """The compiled physical plan of an expression, as indented text."""
    return get_plan(expression).explain()


# ---------------------------------------------------------------------------
# Program-level helpers (definition-time compilation, index advice)
# ---------------------------------------------------------------------------


def statement_expressions(statement) -> Iterator[E.Expression]:
    """The relation-valued expressions a statement will evaluate."""
    expr = getattr(statement, "expr", None)
    if isinstance(expr, E.Expression):
        yield expr


def expression_leaves(expression: E.Expression) -> tuple:
    """The resolvable leaf operands of an expression, in tree order.

    Yields every :class:`~repro.algebra.expressions.RelationRef` and
    :class:`~repro.algebra.expressions.Delta` leaf (deduplicated by name).
    This is what a fragment-aware executor binds per node: base names to
    node fragments, delta names (``R@plus``/``R@minus``) to node-local
    delta fragments — the per-fragment delta scans the compiled
    :class:`~repro.algebra.physical.DeltaScanOp` resolves by name at
    execution time.
    """
    leaves: list = []
    seen: set = set()

    def visit(expr: E.Expression) -> None:
        if isinstance(expr, (E.RelationRef, E.Delta)):
            if expr.name not in seen:
                seen.add(expr.name)
                leaves.append(expr)
            return
        for field in dataclasses.fields(expr):
            value = getattr(expr, field.name)
            if isinstance(value, E.Expression):
                visit(value)

    visit(expression)
    return tuple(leaves)


def precompile_program(program) -> int:
    """Warm the plan cache for every expression of a program.

    Called at rule-definition time (static mode, §6.2) so constraint
    enforcement never pays lowering costs inside a transaction.  Returns
    the number of plans compiled or refreshed.
    """
    count = 0
    for statement in program:
        for expression in statement_expressions(statement):
            get_plan(expression)
            count += 1
    return count


def index_hints(expression: E.Expression) -> set:
    """(relation, attrs) pairs whose hash indexes would speed this plan up.

    Reported for the probe and build sides of hash semi/antijoins, the
    build side of hash joins, and equality selections — whenever that side
    is a direct scan of a named relation and the keys are plain columns.
    Auxiliary differentials (``R@plus``/``R@minus``) are skipped: they are
    rebuilt per transaction, so a persistent index can never exist.
    """
    hints: set = set()
    _collect_hints(get_plan(expression), hints)
    return {(name, attrs) for name, attrs in hints if "@" not in name}


def _collect_hints(op: X.PhysicalOperator, hints: set) -> None:
    if isinstance(op, X.HashSemiJoinOp):  # covers HashAntiJoinOp too
        left_attrs = op.left_keys.attrs
        right_attrs = op.right_keys.attrs
        if isinstance(op.left, X.ScanOp) and left_attrs:
            hints.add((op.left.name, left_attrs))
        if isinstance(op.right, X.ScanOp) and right_attrs:
            hints.add((op.right.name, right_attrs))
    elif isinstance(op, X.HashJoinOp):
        right_attrs = op.right_keys.attrs
        if isinstance(op.right, X.ScanOp) and right_attrs:
            hints.add((op.right.name, right_attrs))
    elif isinstance(op, X.IndexSelectOp):
        hints.add((op.name, tuple(op.attrs)))
    for child in op.children():
        _collect_hints(child, hints)


def estimate_expression(
    expression: E.Expression, cardinalities=None
) -> X.PlanEstimate:
    """The planner's static estimate for evaluating ``expression``.

    ``cardinalities`` maps relation names to tuple counts (e.g. from
    :meth:`repro.engine.database.Database.cardinalities`) or is a
    :class:`~repro.algebra.statistics.RuntimeStatistics` snapshot, whose
    distinct-key counts additionally sharpen equality/join selectivities;
    absent names assume :data:`repro.algebra.physical.DEFAULT_CARDINALITY`.
    """
    return get_plan(expression).estimate(cardinalities)


# Estimate cache, held weakly per Database instance (estimates computed
# under one database's statistics must never answer for another):
# Database -> {Expression: (RuntimeStatistics snapshot, PlanEstimate)}.
# Entries are reused until the observed statistics drift past the
# threshold factor, then recomputed under a fresh snapshot.
_ESTIMATE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_ESTIMATE_CACHE_LIMIT = 1024


def plan_estimate(
    expression: E.Expression, database, drift_threshold: Optional[float] = None
) -> X.PlanEstimate:
    """Estimate ``expression`` under the database's *observed* statistics.

    Captures a :class:`~repro.algebra.statistics.RuntimeStatistics` snapshot
    (cardinalities + built-index distinct keys), and caches the resulting
    estimate per (database, expression).  The cached estimate is served
    until the observed statistics drift past ``drift_threshold`` (default
    :data:`repro.algebra.statistics.DRIFT_THRESHOLD`), at which point it is
    recomputed — the runtime-statistics feedback loop the fixed textbook
    selectivities of PR 1 lacked.
    """
    from repro.algebra.statistics import DRIFT_THRESHOLD, RuntimeStatistics

    if drift_threshold is None:
        drift_threshold = DRIFT_THRESHOLD
    stats = RuntimeStatistics.capture(database)
    per_database = _ESTIMATE_CACHE.get(database)
    if per_database is None:
        per_database = {}
        _ESTIMATE_CACHE[database] = per_database
    cached = per_database.get(expression)
    if cached is not None and not cached[0].drifted(stats, drift_threshold):
        return cached[1]
    plan = get_plan(expression)
    estimate = plan.estimate(stats)
    # The same drift event refreshes the plan's batch-vs-row choices from
    # the observed cardinalities (a "big" base relation that is actually
    # tiny stops batching; a fat observed |Δ| EWMA starts).  Safe on shared
    # plans: both paths are verdict-identical, the flags only steer cost.
    X.annotate_batch_eligibility(plan, stats)
    if len(per_database) >= _ESTIMATE_CACHE_LIMIT:
        per_database.pop(next(iter(per_database)))
    per_database[expression] = (stats, estimate)
    return estimate
