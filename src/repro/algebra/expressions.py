"""Relation-valued expressions of the extended relational algebra.

The node set covers the standard algebra (selection, generalized projection,
union, difference, intersection, product, theta-join) plus the derived
operators the paper's Table 1 uses (semijoin, antijoin) and the scalar
aggregate/counting functions of CL (``SUM/AVG/MIN/MAX``, ``CNT``, and the
multiset extension's ``MLT``).

Nodes are frozen dataclasses (structural equality — the translation tests
compare produced trees against expected ones) with an ``evaluate(context)``
method.  A *context* is anything with ``resolve(name) -> Relation``; the
optional attribute ``tracer`` receives per-operator tuple counts, which the
parallel cost model consumes.

Performance notes: selections and joins compile their predicates to Python
closures once per evaluation (:mod:`repro.algebra.predicates`), and
equality-dominated join/semijoin/antijoin predicates are executed hash-based
rather than by nested loops.  This is what makes the Section 7 workload
(50000-tuple relations) run in seconds under CPython.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union as TypingUnion

from repro.algebra import predicates as P
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, RelationSchema
from repro.engine.types import ANY, FLOAT, INT, NULL, Domain
from repro.errors import EvaluationError, TypeMismatchError


class Expression:
    """Base class for relation-valued expressions."""

    __slots__ = ()

    def evaluate(self, context) -> Relation:
        raise NotImplementedError

    def relations(self) -> set:
        """Names of all relations referenced anywhere in this expression."""
        found: set = set()
        _collect_relations(self, found)
        return found


def _trace(context, op: str, tuples_in: int, tuples_out: int) -> None:
    tracer = getattr(context, "tracer", None)
    if tracer is not None:
        tracer.record(op, tuples_in, tuples_out)


def _fresh_schema(name: str, attributes) -> RelationSchema:
    """Build a derived schema, uniquifying duplicate attribute names."""
    seen: dict = {}
    unique = []
    for attribute in attributes:
        base = attribute.name
        count = seen.get(base, 0)
        seen[base] = count + 1
        if count:
            attribute = Attribute(f"{base}_{count + 1}", attribute.domain, attribute.nullable)
        unique.append(attribute)
    return RelationSchema(name, unique)


def _check_compatible(left: Relation, right: Relation, op: str) -> None:
    if left.schema.arity != right.schema.arity:
        raise TypeMismatchError(
            f"{op}: incompatible arities {left.schema.arity} vs "
            f"{right.schema.arity}"
        )


@dataclass(frozen=True)
class RelationRef(Expression):
    """A reference to a named (base, auxiliary, or temporary) relation."""

    name: str

    def evaluate(self, context) -> Relation:
        return context.resolve(self.name)


DELTA_PLUS = "plus"
DELTA_MINUS = "minus"
DELTA_KINDS = (DELTA_PLUS, DELTA_MINUS)


@dataclass(frozen=True)
class Delta(Expression):
    """First-class differential reference ``ΔR``: the *net* tuples inserted
    into (``kind="plus"``) or deleted from (``kind="minus"``) a base relation
    by the transaction whose context evaluates the expression.

    This is the leaf the delta-rewrite transform of
    :mod:`repro.algebra.delta` bottoms out in.  Resolution is by the
    auxiliary naming convention (``R@plus`` / ``R@minus``), so one plan binds
    to whatever supplies the differentials: a running
    :class:`~repro.engine.transaction.TransactionContext`, a post-commit
    :class:`~repro.engine.session.DeltaView`, or an explicit binding in a
    standalone context.  Unlike a bare ``RelationRef("R@plus")``, the node
    keeps the base relation and update kind structurally available, which the
    planner uses to price the scan from |Δ| instead of |R|.
    """

    relation: str
    kind: str

    def __post_init__(self):
        if self.kind not in DELTA_KINDS:
            raise EvaluationError(
                f"delta kind must be one of {DELTA_KINDS}, got {self.kind!r}"
            )
        if "@" in self.relation:
            raise EvaluationError(
                f"delta of auxiliary relation {self.relation!r}"
            )

    @property
    def name(self) -> str:
        """The auxiliary relation name this delta resolves through."""
        return f"{self.relation}@{self.kind}"

    def evaluate(self, context) -> Relation:
        return context.resolve(self.name)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant relation given as a tuple of rows.

    Used for single/multi-tuple inserts (``insert(beer, ("x", ...))`` in the
    paper's Example 5.1).  The schema is derived with ANY domains; the target
    relation re-validates on insert.
    """

    rows: Tuple[tuple, ...]

    def __post_init__(self):
        if self.rows:
            arity = len(self.rows[0])
            if any(len(row) != arity for row in self.rows):
                raise TypeMismatchError("literal relation rows differ in arity")

    @property
    def arity(self) -> int:
        return len(self.rows[0]) if self.rows else 0

    def evaluate(self, context) -> Relation:
        arity = self.arity or 1
        schema = RelationSchema(
            "literal",
            [Attribute(f"c{i}", ANY, nullable=True) for i in range(1, arity + 1)],
        )
        return Relation(schema, self.rows, _validated=True)


@dataclass(frozen=True)
class Select(Expression):
    """Selection ``sigma_pred(input)``."""

    input: Expression
    predicate: P.Predicate

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        test = P.compile_predicate(self.predicate, source.schema)
        result = source.filtered(lambda row: test(row) is True)
        _trace(context, "select", len(source), len(result))
        return result


@dataclass(frozen=True)
class ProjectItem:
    """One output column of a generalized projection."""

    expr: P.ScalarExpr
    name: Optional[str] = None


@dataclass(frozen=True)
class Project(Expression):
    """Generalized projection ``pi_items(input)``.

    Items may be plain attribute references (classical projection) or
    arbitrary scalar expressions including constants — the paper's
    compensating action projects ``(name, null, null)``.
    """

    input: Expression
    items: Tuple[ProjectItem, ...]

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        schema = source.schema
        compiled = [P.compile_scalar(item.expr, schema) for item in self.items]
        attributes = [
            self._output_attribute(item, schema) for item in self.items
        ]
        out_schema = _fresh_schema(f"{schema.name}_proj", attributes)
        result = Relation(out_schema, bag=source.bag)
        for row in source:
            result.insert(tuple(fn(row) for fn in compiled), _validated=True)
        _trace(context, "project", len(source), len(result))
        return result

    @staticmethod
    def _output_attribute(item: ProjectItem, schema: RelationSchema) -> Attribute:
        expr = item.expr
        if isinstance(expr, P.ColRef) and expr.side in (None, "left"):
            source_attr = schema.attribute_at(expr.attr)
            name = item.name or source_attr.name
            return Attribute(name, source_attr.domain, source_attr.nullable)
        if isinstance(expr, P.Const):
            name = item.name or "const"
            domain = _domain_of_value(expr.value)
            return Attribute(name, domain, nullable=expr.value is NULL)
        name = item.name or "expr"
        return Attribute(name, ANY, nullable=True)


def _domain_of_value(value) -> Domain:
    if value is NULL:
        return ANY
    if isinstance(value, bool):
        from repro.engine.types import BOOL

        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        from repro.engine.types import STRING

        return STRING
    return ANY


@dataclass(frozen=True)
class Union(Expression):
    """Set (or bag) union of two union-compatible inputs."""

    left: Expression
    right: Expression

    def evaluate(self, context) -> Relation:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        _check_compatible(left, right, "union")
        result = left.copy()
        result.insert_many(iter(right))
        _trace(context, "union", len(left) + len(right), len(result))
        return result


@dataclass(frozen=True)
class Difference(Expression):
    """Set (or bag) difference ``left - right``."""

    left: Expression
    right: Expression

    def evaluate(self, context) -> Relation:
        left = self.left.evaluate(context)
        if not len(left):
            # ∅ − e = ∅: skip evaluating the subtrahend entirely (the Δ⁻
            # rewrites of projection/union subtract a post-state expression
            # that is O(|result|) to materialize).
            _trace(context, "difference", 0, 0)
            return Relation(left.schema, bag=left.bag)
        right = self.right.evaluate(context)
        _check_compatible(left, right, "difference")
        result = left.copy()
        result.delete_many(iter(right))
        _trace(context, "difference", len(left) + len(right), len(result))
        return result


@dataclass(frozen=True)
class Intersection(Expression):
    """Set (or bag) intersection."""

    left: Expression
    right: Expression

    def evaluate(self, context) -> Relation:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        _check_compatible(left, right, "intersection")
        result = left.filtered(lambda row: row in right)
        _trace(context, "intersection", len(left) + len(right), len(result))
        return result


def _combined_schema(left: RelationSchema, right: RelationSchema, name: str) -> RelationSchema:
    return _fresh_schema(name, list(left.attributes) + list(right.attributes))


def _split_equi_predicate(predicate: P.Predicate):
    """Split a join predicate into hashable equalities and a residual.

    Returns ``(left_keys, right_keys, residual)`` where the key lists are
    scalar expressions over the respective sides.  Equalities of the form
    ``left-expr = right-expr`` (in either order) become hash keys; everything
    else stays in the residual predicate.
    """
    left_keys: list = []
    right_keys: list = []
    residual: list = []

    def side_of(expr) -> Optional[str]:
        sides = {ref.side for ref in _scalar_columns(expr)}
        if sides == {"left"} or sides == {None}:
            return "left"
        if sides == {"right"}:
            return "right"
        if not sides:
            return "const"
        return None

    def visit(node: P.Predicate) -> None:
        if isinstance(node, P.And):
            visit(node.left)
            visit(node.right)
            return
        if isinstance(node, P.Comparison) and node.op == "=":
            ls, rs = side_of(node.left), side_of(node.right)
            if ls == "left" and rs == "right":
                left_keys.append(node.left)
                right_keys.append(node.right)
                return
            if ls == "right" and rs == "left":
                left_keys.append(node.right)
                right_keys.append(node.left)
                return
        residual.append(node)

    visit(predicate)
    residual_pred = P.conjoin(*residual) if residual else P.TRUE
    return left_keys, right_keys, residual_pred


def _scalar_columns(expr) -> set:
    found: set = set()

    def visit(node):
        if isinstance(node, P.ColRef):
            found.add(node)
        elif isinstance(node, P.Arith):
            visit(node.left)
            visit(node.right)

    visit(expr)
    return found


def _strip_side(expr, side: str):
    """Rewrite ColRefs of ``side`` (or unqualified) into unary ColRefs."""
    if isinstance(expr, P.ColRef):
        return P.ColRef(expr.attr, None)
    if isinstance(expr, P.Arith):
        return P.Arith(expr.op, _strip_side(expr.left, side), _strip_side(expr.right, side))
    return expr


class _HashedSide:
    """Hash index over one join input, keyed by compiled key expressions."""

    def __init__(self, relation: Relation, key_exprs, side: str):
        unary_exprs = [_strip_side(expr, side) for expr in key_exprs]
        compiled = [P.compile_scalar(expr, relation.schema) for expr in unary_exprs]
        self.index: dict = {}
        for row in relation.rows():
            key = tuple(fn(row) for fn in compiled)
            self.index.setdefault(key, []).append(row)
        self.compiled = compiled

    def key_of(self, row: tuple) -> tuple:
        return tuple(fn(row) for fn in self.compiled)


@dataclass(frozen=True)
class Join(Expression):
    """Theta-join: all concatenated pairs satisfying the predicate."""

    left: Expression
    right: Expression
    predicate: P.Predicate

    def evaluate(self, context) -> Relation:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        out_schema = _combined_schema(
            left.schema, right.schema, f"{left.schema.name}_join"
        )
        result = Relation(out_schema, bag=left.bag or right.bag)
        left_keys, right_keys, residual = _split_equi_predicate(self.predicate)
        residual_fn = P.compile_predicate(residual, left.schema, right.schema)
        if left_keys:
            probe_keys = [
                P.compile_scalar(_strip_side(expr, "left"), left.schema)
                for expr in left_keys
            ]
            hashed = _HashedSide(right, right_keys, "right")
            for lrow in left:
                key = tuple(fn(lrow) for fn in probe_keys)
                for rrow in hashed.index.get(key, ()):
                    if residual_fn(lrow, rrow) is True:
                        result.insert(lrow + rrow, _validated=True)
        else:
            full_fn = P.compile_predicate(self.predicate, left.schema, right.schema)
            for lrow in left:
                for rrow in right:
                    if full_fn(lrow, rrow) is True:
                        result.insert(lrow + rrow, _validated=True)
        _trace(context, "join", len(left) + len(right), len(result))
        return result


def _semi_anti_filter(self, context, keep_matching: bool, op_name: str) -> Relation:
    """Shared implementation of SemiJoin / AntiJoin."""
    left = self.left.evaluate(context)
    right = self.right.evaluate(context)
    left_keys, right_keys, residual = _split_equi_predicate(self.predicate)
    if left_keys and isinstance(residual, P.TruePred):
        hashed = _HashedSide(right, right_keys, "right")
        probe_keys = [
            P.compile_scalar(_strip_side(expr, "left"), left.schema)
            for expr in left_keys
        ]
        index = hashed.index

        def has_match(row: tuple) -> bool:
            return tuple(fn(row) for fn in probe_keys) in index

    else:
        pred_fn = P.compile_predicate(self.predicate, left.schema, right.schema)
        right_rows = list(right.rows())

        def has_match(row: tuple) -> bool:
            return any(pred_fn(row, other) is True for other in right_rows)

    if keep_matching:
        result = left.filtered(has_match)
    else:
        result = left.filtered(lambda row: not has_match(row))
    _trace(context, op_name, len(left) + len(right), len(result))
    return result


@dataclass(frozen=True)
class SemiJoin(Expression):
    """Semijoin ``left ⋉_pred right``: left tuples with at least one match."""

    left: Expression
    right: Expression
    predicate: P.Predicate

    def evaluate(self, context) -> Relation:
        return _semi_anti_filter(self, context, True, "semijoin")


@dataclass(frozen=True)
class AntiJoin(Expression):
    """Antijoin ``left ⊳ right``: left tuples with no match in right.

    This is the operator behind Table 1's referential-integrity row: the
    tuples of R that have no partner in S are exactly the violations.
    """

    left: Expression
    right: Expression
    predicate: P.Predicate

    def evaluate(self, context) -> Relation:
        return _semi_anti_filter(self, context, False, "antijoin")


@dataclass(frozen=True)
class Product(Expression):
    """Cartesian product."""

    left: Expression
    right: Expression

    def evaluate(self, context) -> Relation:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        out_schema = _combined_schema(
            left.schema, right.schema, f"{left.schema.name}_x"
        )
        result = Relation(out_schema, bag=left.bag or right.bag)
        for lrow in left:
            for rrow in right:
                result.insert(lrow + rrow, _validated=True)
        _trace(context, "product", len(left) + len(right), len(result))
        return result


@dataclass(frozen=True)
class Rename(Expression):
    """Rename the relation (and optionally its attributes)."""

    input: Expression
    name: str
    attributes: Optional[Tuple[str, ...]] = None

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        if self.attributes is None:
            schema = source.schema.renamed(self.name)
        else:
            if len(self.attributes) != source.schema.arity:
                raise TypeMismatchError(
                    f"rename: {len(self.attributes)} attribute names for "
                    f"arity-{source.schema.arity} input"
                )
            schema = RelationSchema(
                self.name,
                [
                    Attribute(new_name, attribute.domain, attribute.nullable)
                    for new_name, attribute in zip(
                        self.attributes, source.schema.attributes
                    )
                ],
            )
        return source.with_schema(schema)


_AGG_FUNCS = ("SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregate(Expression):
    """Scalar aggregate ``FUNC(R, attr)`` -> a single-tuple relation.

    Follows the paper's FA = {SUM, AVG, MIN, MAX} of type M x C -> C.  Over
    an empty input SUM yields 0 and AVG/MIN/MAX yield NULL (so constraints on
    them are vacuously satisfied, see the module docs of
    :mod:`repro.algebra.predicates`).
    """

    input: Expression
    func: str
    attr: TypingUnion[int, str]

    def __post_init__(self):
        if self.func not in _AGG_FUNCS:
            raise EvaluationError(f"unknown aggregate function {self.func!r}")

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        position = source.schema.position_of(self.attr) - 1
        values = [row[position] for row in source if row[position] is not NULL]
        if self.func == "SUM":
            value = sum(values) if values else 0
        elif not values:
            value = NULL
        elif self.func == "AVG":
            value = sum(values) / len(values)
        elif self.func == "MIN":
            value = min(values)
        else:
            value = max(values)
        name = f"{self.func.lower()}_{source.schema.attributes[position].name}"
        schema = RelationSchema("aggregate", [Attribute(name, ANY, nullable=True)])
        result = Relation(schema, [(value,)], _validated=True)
        _trace(context, "aggregate", len(source), 1)
        return result


@dataclass(frozen=True)
class Count(Expression):
    """``CNT(R)``: tuple count as a single-tuple relation (bag-aware)."""

    input: Expression

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        schema = RelationSchema("count", [Attribute("cnt", INT)])
        result = Relation(schema, [(len(source),)], _validated=True)
        _trace(context, "count", len(source), 1)
        return result


@dataclass(frozen=True)
class Multiplicity(Expression):
    """``MLT(R)``: distinct-tuple count (the multiset extension's counter)."""

    input: Expression

    def evaluate(self, context) -> Relation:
        source = self.input.evaluate(context)
        schema = RelationSchema("multiplicity", [Attribute("mlt", INT)])
        result = Relation(schema, [(source.distinct_count(),)], _validated=True)
        _trace(context, "multiplicity", len(source), 1)
        return result


def _collect_relations(expr: Expression, found: set) -> None:
    if isinstance(expr, RelationRef):
        found.add(expr.name)
    elif isinstance(expr, Delta):
        found.add(expr.name)
    elif isinstance(expr, Literal):
        pass
    elif isinstance(expr, (Select, Project, Rename, Aggregate, Count, Multiplicity)):
        _collect_relations(expr.input, found)
    elif isinstance(
        expr, (Union, Difference, Intersection, Join, SemiJoin, AntiJoin, Product)
    ):
        _collect_relations(expr.left, found)
        _collect_relations(expr.right, found)
    else:
        raise EvaluationError(f"unknown expression node {expr!r}")


def project_attributes(input_expr: Expression, attrs) -> Project:
    """Convenience constructor: classical projection on named attributes."""
    items = tuple(ProjectItem(P.ColRef(attr)) for attr in attrs)
    return Project(input_expr, items)
