"""Physical query operators: the executable form of algebra expressions.

:mod:`repro.algebra.planner` compiles an :class:`~repro.algebra.expressions.
Expression` tree into a DAG of the operators in this module.  Compared with
the reference tree-walk interpreter (``Expression.evaluate``), physical
operators

* split equi-join predicates into hash keys **once at plan time** instead of
  on every evaluation;
* cache compiled predicate/scalar closures and derived output schemas per
  input schema (plans are reused across transactions, and base-relation
  schemas are stable);
* exploit the persistent hash indexes of :mod:`repro.engine.indexes`:
  equality selections become bucket lookups, the build side of hash
  join/semijoin/antijoin reuses a pre-built index instead of re-hashing, and
  a semijoin/antijoin whose *probe* side is indexed is evaluated per
  **distinct key** rather than per row (the referential-integrity fast path);
* execute set operations directly on the underlying row-count dictionaries.

Result equivalence with the naive backend is a hard contract — the property
tests in ``tests/properties/test_prop_planner.py`` compare both backends on
random expressions and database states, in set and bag mode.  Where the
naive interpreter has quirky corners (e.g. the hash-join build side hashes
*distinct* right rows), the physical operators mirror them faithfully.

Every operator also carries a static cardinality/work estimate
(:class:`PlanEstimate`) which the parallel cost model consumes in place of
post-hoc operator traces.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass
from itertools import chain, compress
from operator import itemgetter as _itemgetter, not_ as _not
from typing import Dict, Optional, Tuple

from repro.algebra import columnar
from repro.algebra import predicates as P
from repro.algebra.expressions import (
    Project,
    _check_compatible,
    _combined_schema,
    _fresh_schema,
    _strip_side,
    _trace,
)
from repro.engine.overlay import OverlayRelation
from repro.engine.relation import Relation
from repro.engine.schema import Attribute, RelationSchema
from repro.engine.types import ANY, INT, NULL
from repro.errors import EvaluationError, TypeMismatchError

# Default cardinality assumed for relations absent from a statistics mapping.
DEFAULT_CARDINALITY = 1000.0
# Default cardinality assumed for a transaction's net differential: deltas
# are small by premise (that is the entire point of differential
# enforcement), so delta scans price orders of magnitude under base scans
# unless a statistics mapping supplies the actual |Δ|.
DEFAULT_DELTA_CARDINALITY = 16.0
# Classic textbook selectivities for the static estimates.
FILTER_SELECTIVITY = 1.0 / 3.0
EQUALITY_SELECTIVITY = 0.01
SEMI_SELECTIVITY = 0.5


@dataclass
class PlanEstimate:
    """Static cardinality and work estimate of a (sub)plan.

    ``scanned``/``built``/``probed`` are cumulative tuple counts over the
    whole subtree, in the same units the parallel cost model's per-tuple
    weights use (:meth:`repro.parallel.cost_model.CostModel.plan_time`).
    """

    rows: float
    scanned: float = 0.0
    built: float = 0.0
    probed: float = 0.0
    # Wire work: tuples moved between nodes and messages exchanged.  The
    # single-node planner never fills these; the fragment-aware parallel
    # layer adds the movement cost of its operand placements so
    # CostModel.plan_time prices shipping Δ against shipping fragments.
    transferred: float = 0.0
    messages: float = 0.0

    @property
    def work(self) -> float:
        """Total tuple touches (scan + build + probe)."""
        return self.scanned + self.built + self.probed

    def absorb(self, child: "PlanEstimate") -> None:
        """Accumulate a child subtree's work into this estimate."""
        self.scanned += child.scanned
        self.built += child.built
        self.probed += child.probed
        self.transferred += child.transferred
        self.messages += child.messages


def _card(cards, name: str) -> float:
    if cards is None:
        return DEFAULT_CARDINALITY
    return float(cards.get(name, DEFAULT_CARDINALITY))


def _distinct_keys(cards, name: str, attrs) -> Optional[float]:
    """Distinct-key count from a statistics snapshot, if it carries one.

    ``cards`` may be a plain ``{name: cardinality}`` mapping (no distinct
    information) or a :class:`repro.algebra.statistics.RuntimeStatistics`.
    """
    getter = getattr(cards, "distinct_keys", None)
    if getter is None or attrs is None:
        return None
    distinct = getter(name, attrs)
    if not distinct:
        return None
    return float(distinct)


class _SchemaLRU(dict):
    """A small bounded mapping for per-schema compiled state.

    Operator instances cache bound closures / derived schemas keyed by
    their input schema.  Plans live for the process lifetime (the plan
    cache holds them), while schemas churn — every generalized projection
    mints a fresh output schema and every transaction can introduce
    temporaries — so an unbounded dict grows monotonically.  Structural
    schema hashing keeps the hit rate high; the LRU merely caps the tail.
    """

    __slots__ = ("maxsize",)

    def __init__(self, maxsize: int = 32):
        super().__init__()
        self.maxsize = maxsize

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is not default and len(self) > 1:
            # Move-to-end so eviction drops the coldest schema.
            del self[key]
            self[key] = value
        return value

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        if len(self) > self.maxsize:
            del self[next(iter(self))]


class PhysicalOperator:
    """Base class of physical operators: ``execute(context) -> Relation``."""

    op_name = "?"

    #: Set by :func:`annotate_batch_eligibility` after lowering: operators
    #: whose estimated input cardinality clears
    #: :data:`repro.algebra.columnar.BATCH_ESTIMATE_ROWS` run their
    #: whole-column batch path (subject to the runtime row-count guard).
    batch_eligible = False

    #: Set by :func:`annotate_batch_eligibility` on :class:`FusedPipelineOp`
    #: regions whose source estimate clears the same floor.
    fuse_eligible = False

    def execute(self, context) -> Relation:
        raise NotImplementedError

    def produce_batch(self, context) -> "columnar.ColumnBatch":
        """Execute and hand the result upward as a :class:`ColumnBatch`.

        Operators inside a fused pipeline region override this so a
        batch flows from child to parent directly — no ``to_relation`` /
        ``from_relation`` round-trip per operator boundary.  The default
        wraps :meth:`execute`, so any operator can source a region.
        """
        return columnar.ColumnBatch.from_relation(self.execute(context))

    def estimate(self, cards=None) -> PlanEstimate:
        raise NotImplementedError

    def children(self) -> tuple:
        return ()

    def describe(self) -> str:
        """One-line description (operator-specific details)."""
        return self.op_name

    def explain(self, indent: int = 0) -> str:
        """Render the operator subtree as an indented plan listing."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()!r}>"


class _KeySide:
    """Key extraction for one side of an equi-join, bound lazily per schema.

    ``bind(schema)`` returns ``(key_fn, positions)`` where ``key_fn`` maps a
    row to its hash key (a bare value for single keys, a tuple otherwise —
    the same convention :class:`repro.engine.indexes.HashIndex` uses, so the
    two interoperate) and ``positions`` is the 0-based position tuple when
    every key is a plain column reference, else None.
    """

    __slots__ = ("exprs", "plain", "_bound")

    def __init__(self, exprs, side: str):
        self.exprs = tuple(_strip_side(expr, side) for expr in exprs)
        self.plain = all(isinstance(expr, P.ColRef) for expr in self.exprs)
        self._bound: Dict[RelationSchema, tuple] = _SchemaLRU()

    @property
    def attrs(self) -> Optional[tuple]:
        """The attribute identifiers when all keys are plain columns."""
        if not self.plain:
            return None
        return tuple(expr.attr for expr in self.exprs)

    def bind(self, schema: RelationSchema) -> tuple:
        bound = self._bound.get(schema)
        if bound is not None:
            return bound
        if self.plain:
            positions = tuple(
                schema.position_of(expr.attr) - 1 for expr in self.exprs
            )
            if len(positions) == 1:
                position = positions[0]

                def key_fn(row, _p=position):
                    return row[_p]

            else:

                def key_fn(row, _ps=positions):
                    return tuple(row[p] for p in _ps)

            bound = (key_fn, positions)
        else:
            fns = [P.compile_scalar(expr, schema) for expr in self.exprs]
            if len(fns) == 1:
                fn = fns[0]

                def key_fn(row, _f=fn):
                    return _f(row)

            else:

                def key_fn(row, _fs=fns):
                    return tuple(f(row) for f in _fs)

            bound = (key_fn, None)
        self._bound[schema] = bound
        return bound


class _CombinedSchemaCache:
    """Join/product output schemas, cached per input schema pair."""

    __slots__ = ("suffix", "_cache")

    def __init__(self, suffix: str):
        self.suffix = suffix
        self._cache: dict = _SchemaLRU()

    def get(self, left_schema, right_schema) -> RelationSchema:
        key = (left_schema, right_schema)
        out = self._cache.get(key)
        if out is None:
            out = _combined_schema(
                left_schema, right_schema, f"{left_schema.name}{self.suffix}"
            )
            self._cache[key] = out
        return out


def _count_getter(relation: Relation):
    """row -> multiplicity, without materializing overlay views.

    Plain relations answer straight from their row dict; overlay relations
    (transaction working state) answer from the (base, Δ⁺, Δ⁻) triple — the
    sub-linear operator paths must not trigger an O(|R|) materialization
    just to re-attach multiplicities.
    """
    if isinstance(relation, OverlayRelation):
        return relation.multiplicity
    return relation._rows.__getitem__


def _hash_buckets(relation: Relation, key_side: "_KeySide", need_rows: bool):
    """The build side of a hash join/semijoin: key -> distinct rows.

    Reuses a pre-built persistent index when the key columns carry one; a
    *declared* index is built on the spot (the build is exactly the hashing
    pass this function would otherwise do ephemerally, and it persists);
    otherwise one hashing pass over the distinct rows.  With
    ``need_rows=False`` a bare key set is enough (semijoin membership).
    """
    key_fn, positions = key_side.bind(relation.schema)
    if positions is not None:
        index = relation.amortized_index(positions)
        if index is not None:
            index.touch("build")
            return index.buckets
    if not need_rows:
        return {key_fn(row) for row in relation.rows()}
    buckets: dict = {}
    for row in relation.rows():
        key = key_fn(row)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets


def _restricted_buckets(relation: Relation, key_side: "_KeySide", rows):
    """Build-side buckets restricted to a survivor subset: ``(buckets, allowed)``.

    The fused-region pushdown path knows (from a right-side filter) which
    build rows can contribute pairs at all.  Index-usage accounting must
    not depend on the execution mode, so a persistent index on the key
    columns is touched exactly as :func:`_hash_buckets` would and its full
    buckets are returned with the restriction as a membership set
    (``allowed``); without an index, only the surviving rows are hashed —
    the ephemeral build pass shrinks with the filter's selectivity.
    """
    key_fn, positions = key_side.bind(relation.schema)
    if positions is not None:
        index = relation.amortized_index(positions)
        if index is not None:
            index.touch("build")
            return index.buckets, frozenset(rows)
    buckets: dict = {}
    for row in rows:
        key = key_fn(row)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row]
        else:
            bucket.append(row)
    return buckets, None


class _PredicateCache:
    """Compiled-closure cache for a predicate, keyed by input schema(s)."""

    __slots__ = ("predicate", "_compiled", "_kernels")

    def __init__(self, predicate: P.Predicate):
        self.predicate = predicate
        self._compiled: dict = _SchemaLRU()
        self._kernels: dict = _SchemaLRU()

    @property
    def is_true(self) -> bool:
        return isinstance(self.predicate, P.TruePred)

    def bind(self, schema, right_schema=None):
        key = (schema, right_schema)
        fn = self._compiled.get(key)
        if fn is None:
            fn = P.compile_predicate(self.predicate, schema, right_schema)
            self._compiled[key] = fn
        return fn

    def bind_kernel(self, schema):
        """The whole-column twin of :meth:`bind` (unary contexts only)."""
        kernel = self._kernels.get(schema)
        if kernel is None:
            kernel = columnar.compile_predicate_kernel(self.predicate, schema)
            self._kernels[schema] = kernel
        return kernel


def _batch_mode(op: "PhysicalOperator", input_rows: int) -> bool:
    """Should ``op`` take its whole-column path for this execution?

    ``auto`` (the default) requires both the planner's eligibility flag
    (estimated input ≥ :data:`~repro.algebra.columnar.BATCH_ESTIMATE_ROWS`,
    so Δ-scans stay row-at-a-time) and an actual input large enough to
    amortize batch setup.  ``always``/``never`` let tests and benchmarks
    pin either path and assert parity.
    """
    policy = columnar.batch_policy()
    if policy == "auto":
        return op.batch_eligible and input_rows >= columnar.BATCH_MIN_ROWS
    return policy == "always"


_BATCH_OPERATORS: tuple = ()  # filled after the operator classes are defined


def _fuse_mode(op: "PhysicalOperator") -> bool:
    """Should this fused region execute as one batch kernel?

    ``auto`` requires the planner's region eligibility (the source
    operator's estimated output clears the batch floor, so Δ-shaped
    regions stay row-at-a-time) and defers to a ``never`` batch policy;
    ``always``/``never`` let tests pin fused vs unfused execution of the
    same plan.
    """
    policy = columnar.fusion_policy()
    if policy == "auto":
        return op.fuse_eligible and columnar.batch_policy() != "never"
    return policy == "always"


def annotate_batch_eligibility(plan: "PhysicalOperator", cards=None) -> None:
    """Flag batch-capable operators whose estimated input is large enough.

    Called once per lowering (plans are cached and shared, so the flag is
    set before a plan becomes visible to concurrent executors and never
    mutated afterwards).  The per-operator decision reads the *input*
    estimate — a filter over a default base scan (1000 rows) batches, a
    filter over a Δ-scan (default |Δ| = 16) stays row-at-a-time.  Fused
    pipeline regions are flagged from their source operator's estimate
    under the same floor.
    """
    for op in _walk_plan(plan):
        if isinstance(op, FusedPipelineOp):
            op.fuse_eligible = (
                op.source.estimate(cards).rows >= columnar.BATCH_ESTIMATE_ROWS
            )
            continue
        if not isinstance(op, _BATCH_OPERATORS):
            continue
        if isinstance(op, (FilterOp, ProjectOp)):
            feeder = op.child
        elif isinstance(op, (UnionOp, DifferenceOp)):
            feeder = op.right  # the side the row path loops over in Python
        else:  # joins and semi/antijoins batch their probe (left) loop
            feeder = op.left
        op.batch_eligible = (
            feeder.estimate(cards).rows >= columnar.BATCH_ESTIMATE_ROWS
        )


def _walk_plan(plan):
    stack = [plan]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op.children())


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class ScanOp(PhysicalOperator):
    """Resolve a named (base, auxiliary, or temporary) relation."""

    op_name = "scan"

    def __init__(self, name: str):
        self.name = name

    def execute(self, context) -> Relation:
        return context.resolve(self.name)

    def produce_batch(self, context):
        # The relation's cached columnar form: scans inside a fused
        # region start from columns without a per-execution decompose.
        return context.resolve(self.name).column_batch()

    def estimate(self, cards=None) -> PlanEstimate:
        return PlanEstimate(rows=_card(cards, self.name))

    def describe(self) -> str:
        return f"scan({self.name})"


class DeltaScanOp(PhysicalOperator):
    """Scan a transaction's net differential (``R@plus`` / ``R@minus``).

    Resolution is by auxiliary name, so the same compiled plan binds to
    whatever supplies the differentials at execution time: a running
    :class:`~repro.engine.transaction.TransactionContext`'s live deltas, a
    post-commit :class:`~repro.engine.session.DeltaView`, or an explicit
    standalone binding.  The estimate prices from |Δ| — the differential's
    own cardinality when the statistics mapping carries it under the
    auxiliary name (explicit per-transaction sizes, or the observed EWMA
    |Δ| distribution a :class:`~repro.algebra.statistics.RuntimeStatistics`
    snapshot exposes from committed transactions), else
    :data:`DEFAULT_DELTA_CARDINALITY` — never from the base relation's |R|.
    This is what lets the cost model prefer delta plans over full plans
    without executing either.
    """

    op_name = "delta_scan"

    def __init__(self, relation: str, kind: str):
        self.relation = relation
        self.kind = kind
        self.name = f"{relation}@{kind}"

    def execute(self, context) -> Relation:
        return context.resolve(self.name)

    def produce_batch(self, context):
        return context.resolve(self.name).column_batch()

    def estimate(self, cards=None) -> PlanEstimate:
        if cards is not None and self.name in cards:
            return PlanEstimate(rows=float(cards.get(self.name)))
        return PlanEstimate(rows=DEFAULT_DELTA_CARDINALITY)

    def describe(self) -> str:
        return f"delta_scan({self.name})"


_LITERAL_SCHEMAS: Dict[int, RelationSchema] = {}


def _literal_schema(arity: int) -> RelationSchema:
    """The ANY-domain schema of an ``arity``-column literal, cached.

    Literal plans are cache-exempt (every distinct insert batch would churn
    the plan cache), so they are re-lowered per execution; sharing the
    schema keeps that re-lowering allocation-free on the transaction path.
    """
    schema = _LITERAL_SCHEMAS.get(arity)
    if schema is None:
        schema = RelationSchema(
            "literal",
            [Attribute(f"c{i}", ANY, nullable=True) for i in range(1, arity + 1)],
        )
        _LITERAL_SCHEMAS[arity] = schema
    return schema


class LiteralOp(PhysicalOperator):
    """A constant relation (mirrors ``Literal.evaluate``)."""

    op_name = "literal"

    def __init__(self, rows: Tuple[tuple, ...]):
        self.rows = rows
        self._schema = _literal_schema(len(rows[0]) if rows else 1)

    def execute(self, context) -> Relation:
        return Relation(self._schema, self.rows, _validated=True)

    def estimate(self, cards=None) -> PlanEstimate:
        return PlanEstimate(rows=float(len(self.rows)))

    def describe(self) -> str:
        return f"literal({len(self.rows)} rows)"


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class FilterOp(PhysicalOperator):
    """Selection by a compiled predicate."""

    op_name = "select"

    def __init__(self, child: PhysicalOperator, predicate: P.Predicate):
        self.child = child
        self._pred = _PredicateCache(predicate)

    def children(self) -> tuple:
        return (self.child,)

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        src_rows = source._rows
        if _batch_mode(self, len(src_rows)):
            mask = self._pred.bind_kernel(source.schema)(list(src_rows))
            result = Relation(source.schema, bag=source.bag)
            # compress keeps truthy mask entries — exactly the ``is True``
            # rule of three-valued logic (False and None both drop).
            result._rows = dict(compress(src_rows.items(), mask))
        else:
            test = self._pred.bind(source.schema)
            result = source.filtered(lambda row: test(row) is True)
        _trace(context, "select", len(source), len(result))
        return result

    def produce_batch(self, context):
        return self.apply_batch(self.child.produce_batch(context), context)

    def apply_batch(self, batch, context):
        """Apply the stage to an already-produced batch.

        Fused regions that restructure the chain (join-side predicate
        pushdown) drive the surviving stages directly instead of pulling
        through ``produce_batch``.
        """
        rows = batch.rows_list()
        mask = self._pred.bind_kernel(batch.schema)(rows)
        out_rows = list(compress(rows, mask))
        counts = batch.counts
        out_counts = (
            list(compress(counts, mask)) if counts is not None else None
        )
        out = columnar.ColumnBatch.from_rows(
            batch.schema,
            batch.bag,
            out_rows,
            out_counts,
            normalized=batch.normalized,
        )
        _trace(context, "select", len(batch), len(out))
        return out

    def estimate(self, cards=None) -> PlanEstimate:
        child = self.child.estimate(cards)
        est = PlanEstimate(rows=child.rows * FILTER_SELECTIVITY)
        est.absorb(child)
        est.scanned += child.rows
        return est

    def describe(self) -> str:
        return f"select[{self._pred.predicate!r}]"


class IndexSelectOp(PhysicalOperator):
    """Equality selection over a base relation, index-accelerated.

    Compiled from ``σ[col = const ∧ residual](R)``.  When ``R`` resolves to
    a relation carrying a built hash index on exactly the equality columns,
    the matching rows come from one bucket lookup; otherwise the operator
    degrades to the plain filter path.  NULL constants never reach this
    operator (the planner keeps them in the residual: NULL compares unknown,
    but an index bucket would match it by identity).
    """

    op_name = "select"

    def __init__(
        self,
        name: str,
        attrs: Tuple[object, ...],
        values: tuple,
        residual: P.Predicate,
        full_predicate: P.Predicate,
    ):
        self.name = name
        self.attrs = attrs
        self.values = values
        self.key = values[0] if len(values) == 1 else values
        self._residual = _PredicateCache(residual)
        # The full predicate, for the no-index fallback.
        self._full = _PredicateCache(full_predicate)
        self._positions: Dict[RelationSchema, tuple] = _SchemaLRU()

    def _bind_positions(self, schema: RelationSchema) -> tuple:
        positions = self._positions.get(schema)
        if positions is None:
            positions = tuple(
                schema.position_of(attr) - 1 for attr in self.attrs
            )
            self._positions[schema] = positions
        return positions

    def execute(self, context) -> Relation:
        source = context.resolve(self.name)
        positions = self._bind_positions(source.schema)
        # The no-index fallback pays a full scan; account that as forgone
        # work so a declared index gets built once repetition amortizes it.
        index = source.amortized_index(
            positions, forgone_work=source.distinct_count()
        )
        if index is None:
            test = self._full.bind(source.schema)
            result = source.filtered(lambda row: test(row) is True)
            _trace(context, "select", len(source), len(result))
            return result
        count_of = _count_getter(source)
        selected: dict = {}
        if self._residual.is_true:
            for row in index.lookup(self.key):
                selected[row] = count_of(row)
        else:
            residual = self._residual.bind(source.schema)
            for row in index.lookup(self.key):
                if residual(row) is True:
                    selected[row] = count_of(row)
        result = Relation(source.schema, bag=source.bag)
        result._rows = selected
        _trace(context, "select", len(source), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        rows = _card(cards, self.name)
        distinct = _distinct_keys(cards, self.name, tuple(self.attrs))
        if distinct is not None:
            # The classic |R| / V(R, a) estimate from observed distinct keys.
            out = max(1.0, rows / distinct)
        else:
            out = max(1.0, rows * EQUALITY_SELECTIVITY)
        return PlanEstimate(rows=out, probed=1.0, scanned=out)

    def describe(self) -> str:
        keys = ", ".join(
            f"{attr}={value!r}" for attr, value in zip(self.attrs, self.values)
        )
        return f"index_select({self.name}: {keys})"


class ProjectOp(PhysicalOperator):
    """Generalized projection with per-schema compiled output columns."""

    op_name = "project"

    def __init__(self, child: PhysicalOperator, items: tuple):
        self.child = child
        self.items = items
        self._bound: Dict[RelationSchema, tuple] = _SchemaLRU()

    def children(self) -> tuple:
        return (self.child,)

    def _bind(self, schema: RelationSchema) -> tuple:
        bound = self._bound.get(schema)
        if bound is None:
            compiled = [P.compile_scalar(item.expr, schema) for item in self.items]
            attributes = [
                Project._output_attribute(item, schema) for item in self.items
            ]
            out_schema = _fresh_schema(f"{schema.name}_proj", attributes)
            if all(isinstance(item.expr, P.ColRef) for item in self.items):
                positions = tuple(
                    P._resolve_position(item.expr, schema, None)[1]
                    for item in self.items
                )
                if len(positions) == 1:
                    getter = _itemgetter(positions[0])
                    # zip with a single iterable wraps each value in a
                    # 1-tuple at C speed.
                    row_maker = lambda rows: list(zip(map(getter, rows)))
                else:
                    getter = _itemgetter(*positions)
                    row_maker = lambda rows: list(map(getter, rows))
            else:
                kernels = [
                    columnar.compile_scalar_kernel(item.expr, schema)
                    for item in self.items
                ]
                row_maker = lambda rows: list(
                    zip(*(kernel(rows) for kernel in kernels))
                )
            bound = (compiled, out_schema, row_maker)
            self._bound[schema] = bound
        return bound

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        compiled, out_schema, row_maker = self._bind(source.schema)
        result = Relation(out_schema, bag=source.bag)
        src_rows = source._rows
        if _batch_mode(self, len(src_rows)):
            rows, counts = source.rows_and_counts()
            out_rows = row_maker(rows)
            if counts is None:
                if source.bag:
                    result._rows = dict(_Counter(out_rows))
                else:
                    result._rows = dict.fromkeys(out_rows, 1)
            else:
                merged: dict = {}
                get = merged.get
                for row, count in zip(out_rows, counts):
                    merged[row] = get(row, 0) + count
                result._rows = merged
        else:
            insert = result.insert
            for row in source:
                insert(tuple(fn(row) for fn in compiled), _validated=True)
        _trace(context, "project", len(source), len(result))
        return result

    def produce_batch(self, context):
        return self.apply_batch(self.child.produce_batch(context), context)

    def apply_batch(self, batch, context):
        """Apply the stage to an already-produced batch (see FilterOp)."""
        _, out_schema, row_maker = self._bind(batch.schema)
        out_rows = row_maker(batch.rows_list())
        # Projection can collapse rows; the merge (bag count summation,
        # set first-occurrence-wins) is deferred to the region boundary.
        out = columnar.ColumnBatch.from_rows(
            out_schema,
            batch.bag,
            out_rows,
            batch.counts,
            normalized=False,
        )
        _trace(context, "project", len(batch), len(out))
        return out

    def estimate(self, cards=None) -> PlanEstimate:
        child = self.child.estimate(cards)
        est = PlanEstimate(rows=child.rows)
        est.absorb(child)
        est.scanned += child.rows
        return est

    def describe(self) -> str:
        return f"project[{len(self.items)} cols]"


class RenameOp(PhysicalOperator):
    """Rename the relation (and optionally its attributes)."""

    op_name = "rename"

    def __init__(
        self,
        child: PhysicalOperator,
        name: str,
        attributes: Optional[Tuple[str, ...]],
    ):
        self.child = child
        self.name = name
        self.attributes = attributes
        self._schemas: Dict[RelationSchema, RelationSchema] = _SchemaLRU()

    def children(self) -> tuple:
        return (self.child,)

    def _bind(self, schema: RelationSchema) -> RelationSchema:
        out = self._schemas.get(schema)
        if out is None:
            if self.attributes is None:
                out = schema.renamed(self.name)
            else:
                if len(self.attributes) != schema.arity:
                    raise TypeMismatchError(
                        f"rename: {len(self.attributes)} attribute names for "
                        f"arity-{schema.arity} input"
                    )
                out = RelationSchema(
                    self.name,
                    [
                        Attribute(new_name, attribute.domain, attribute.nullable)
                        for new_name, attribute in zip(
                            self.attributes, schema.attributes
                        )
                    ],
                )
            self._schemas[schema] = out
        return out

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        return source.with_schema(self._bind(source.schema))

    def estimate(self, cards=None) -> PlanEstimate:
        return self.child.estimate(cards)

    def describe(self) -> str:
        return f"rename({self.name})"


class AggregateOp(PhysicalOperator):
    """Scalar aggregate SUM/AVG/MIN/MAX -> single-tuple relation."""

    op_name = "aggregate"

    def __init__(self, child: PhysicalOperator, func: str, attr):
        self.child = child
        self.func = func
        self.attr = attr

    def children(self) -> tuple:
        return (self.child,)

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        position = source.schema.position_of(self.attr) - 1
        values = [row[position] for row in source if row[position] is not NULL]
        if self.func == "SUM":
            value = sum(values) if values else 0
        elif not values:
            value = NULL
        elif self.func == "AVG":
            value = sum(values) / len(values)
        elif self.func == "MIN":
            value = min(values)
        else:
            value = max(values)
        name = f"{self.func.lower()}_{source.schema.attributes[position].name}"
        schema = RelationSchema("aggregate", [Attribute(name, ANY, nullable=True)])
        result = Relation(schema, [(value,)], _validated=True)
        _trace(context, "aggregate", len(source), 1)
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        child = self.child.estimate(cards)
        est = PlanEstimate(rows=1.0)
        est.absorb(child)
        est.scanned += child.rows
        return est

    def describe(self) -> str:
        return f"aggregate({self.func}, {self.attr})"


class CountOp(PhysicalOperator):
    """CNT(R): bag-aware tuple count."""

    op_name = "count"

    def __init__(self, child: PhysicalOperator):
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        schema = RelationSchema("count", [Attribute("cnt", INT)])
        result = Relation(schema, [(len(source),)], _validated=True)
        _trace(context, "count", len(source), 1)
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        child = self.child.estimate(cards)
        est = PlanEstimate(rows=1.0)
        est.absorb(child)
        return est


class MultiplicityOp(PhysicalOperator):
    """MLT(R): distinct-tuple count."""

    op_name = "multiplicity"

    def __init__(self, child: PhysicalOperator):
        self.child = child

    def children(self) -> tuple:
        return (self.child,)

    def execute(self, context) -> Relation:
        source = self.child.execute(context)
        schema = RelationSchema("multiplicity", [Attribute("mlt", INT)])
        result = Relation(schema, [(source.distinct_count(),)], _validated=True)
        _trace(context, "multiplicity", len(source), 1)
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        child = self.child.estimate(cards)
        est = PlanEstimate(rows=1.0)
        est.absorb(child)
        return est


# ---------------------------------------------------------------------------
# Set operators (hash-based, directly on the row-count dictionaries)
# ---------------------------------------------------------------------------


class _BinaryOp(PhysicalOperator):
    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.left = left
        self.right = right

    def children(self) -> tuple:
        return (self.left, self.right)


class UnionOp(_BinaryOp):
    """Set/bag union (mirrors ``left.copy(); insert_many(iter(right))``)."""

    op_name = "union"

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        _check_compatible(left, right, "union")
        if left.schema.is_union_compatible(right.schema):
            result = Relation(left.schema, bag=left.bag)
            if result.bag:
                merged = dict(left._rows)
                for row, count in right._rows.items():
                    merged[row] = merged.get(row, 0) + (
                        count if right.bag else 1
                    )
            elif _batch_mode(self, len(right._rows)):
                # Set mode: every multiplicity is 1, so the whole union is
                # one C-level pass (first occurrence wins, like setdefault).
                merged = dict.fromkeys(chain(left._rows, right._rows), 1)
            else:
                merged = dict(left._rows)
                for row in right._rows:
                    merged.setdefault(row, 1)
            result._rows = merged
        else:
            # Differing domains: go through validating inserts exactly like
            # the naive backend, so type errors surface identically.
            result = left.copy()
            result.insert_many(iter(right))
        _trace(context, "union", len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=left.rows + right.rows)
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows + right.rows
        return est


class DifferenceOp(_BinaryOp):
    """Set/bag difference (mirrors ``left.copy(); delete_many(iter(right))``)."""

    op_name = "difference"

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        if not len(left):
            # Emptiness fast-path: ∅ − e = ∅ without evaluating e.  This is
            # what keeps the Δ⁻ rewrites of projection and union O(|Δ|) in
            # the common case — their subtracted post-state expression
            # (O(|result|) to produce) is only computed when the candidate
            # Δ⁻ side actually holds tuples.  Trade-off: the right side's
            # schema-compatibility check is skipped along with its
            # evaluation, so a malformed difference only raises once the
            # left side is non-empty.
            _trace(context, "difference", 0, 0)
            return Relation(left.schema, bag=left.bag)
        right = self.right.execute(context)
        _check_compatible(left, right, "difference")
        result = Relation(left.schema, bag=left.bag)
        if (
            not left.bag
            and not right.bag
            and len(right._rows) > len(left._rows)
            and _batch_mode(self, len(right._rows))
        ):
            # Subtracting a big set from a small one: scan the small side
            # with membership tests instead of popping per right row.
            right_rows = right._rows
            result._rows = {
                row: count
                for row, count in left._rows.items()
                if row not in right_rows
            }
            _trace(context, "difference", len(left) + len(right), len(result))
            return result
        remaining = dict(left._rows)
        if result.bag:
            for row, count in right._rows.items():
                mine = remaining.get(row)
                if mine is None:
                    continue
                removed = count if right.bag else 1
                if mine > removed:
                    remaining[row] = mine - removed
                else:
                    del remaining[row]
        else:
            for row in right._rows:
                remaining.pop(row, None)
        result._rows = remaining
        _trace(context, "difference", len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=max(left.rows - right.rows, 1.0))
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows + right.rows
        return est


class IntersectOp(_BinaryOp):
    """Set/bag intersection (keeps left multiplicities, like the naive op)."""

    op_name = "intersection"

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        _check_compatible(left, right, "intersection")
        result = Relation(left.schema, bag=left.bag)
        right_rows = right._rows
        result._rows = {
            row: count
            for row, count in left._rows.items()
            if row in right_rows
        }
        _trace(context, "intersection", len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=min(left.rows, right.rows) * SEMI_SELECTIVITY)
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows + right.rows
        return est


class ProductOp(_BinaryOp):
    """Cartesian product."""

    op_name = "product"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        super().__init__(left, right)
        self._schemas = _CombinedSchemaCache("_x")

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        result = Relation(
            self._schemas.get(left.schema, right.schema),
            bag=left.bag or right.bag,
        )
        insert = result.insert
        for lrow in left:
            for rrow in right:
                insert(lrow + rrow, _validated=True)
        _trace(context, "product", len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=left.rows * right.rows)
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows * right.rows
        return est


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


class HashJoinOp(_BinaryOp):
    """Equi-join executed as build(right) + probe(left).

    The build side hashes *distinct* right rows (the naive backend's
    convention); a pre-built persistent index on the right relation is
    reused when its key columns match.
    """

    op_name = "join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys,
        right_keys,
        residual: P.Predicate,
    ):
        super().__init__(left, right)
        self.left_keys = _KeySide(left_keys, "left")
        self.right_keys = _KeySide(right_keys, "right")
        self._residual = _PredicateCache(residual)
        self._schemas = _CombinedSchemaCache("_join")

    def _probe_pairs(
        self,
        left: Relation,
        right: Relation,
        probe: Optional[tuple] = None,
        right_restrict=None,
    ):
        """Whole-column probe kernel: ``(pairs, pair_counts_or_None)``.

        The key column is extracted in one map pass and the output pairs
        materialize in one comprehension instead of a bound-method insert
        per pair.  Pairs are unique (distinct left rows x distinct bucket
        rows, and the left prefix keeps them apart), so multiplicity-1
        inputs need no counts at all; a bag-mode left input gets the
        counts-aware variant, where every pair inherits its left row's
        multiplicity (build sides hash *distinct* right rows, so right
        multiplicities never contribute — the row path's convention).

        ``probe`` and ``right_restrict`` serve fused-region predicate
        pushdown: ``probe`` replaces the probe side's ``(rows, counts)``
        with a pre-filtered pair, and ``right_restrict`` lists the build
        rows a pushed right-side filter kept, so filtered-out pairs are
        never concatenated (see :func:`_restricted_buckets`).
        ``right_restrict`` is only honoured on the residual-free paths
        (the fused caller gates on a true residual).
        """
        if right_restrict is None:
            buckets = _hash_buckets(right, self.right_keys, need_rows=True)
            allowed = None
        else:
            buckets, allowed = _restricted_buckets(
                right, self.right_keys, right_restrict
            )
        left_key, positions = self.left_keys.bind(left.schema)
        get_bucket = buckets.get
        if probe is None:
            lrows, lcounts = left.rows_and_counts()
        else:
            lrows, lcounts = probe
        extract = (
            _itemgetter(*positions) if positions is not None else left_key
        )
        if lcounts is not None:
            pairs: list = []
            pair_counts: list = []
            extend_pairs = pairs.extend
            extend_counts = pair_counts.extend
            if self._residual.is_true:
                if allowed is None:
                    for lrow, key, count in zip(
                        lrows, map(extract, lrows), lcounts
                    ):
                        bucket = get_bucket(key)
                        if bucket:
                            extend_pairs(lrow + rrow for rrow in bucket)
                            extend_counts([count] * len(bucket))
                else:
                    for lrow, key, count in zip(
                        lrows, map(extract, lrows), lcounts
                    ):
                        matched = [
                            lrow + rrow
                            for rrow in get_bucket(key) or ()
                            if rrow in allowed
                        ]
                        if matched:
                            extend_pairs(matched)
                            extend_counts([count] * len(matched))
            else:
                residual = self._residual.bind(left.schema, right.schema)
                for lrow, key, count in zip(
                    lrows, map(extract, lrows), lcounts
                ):
                    matched = [
                        lrow + rrow
                        for rrow in get_bucket(key) or ()
                        if residual(lrow, rrow) is True
                    ]
                    if matched:
                        extend_pairs(matched)
                        extend_counts([count] * len(matched))
            return pairs, pair_counts
        if self._residual.is_true:
            if allowed is not None:
                if positions is not None and len(positions) == 1:
                    p = positions[0]
                    pairs = [
                        lrow + rrow
                        for lrow in lrows
                        for rrow in get_bucket(lrow[p]) or ()
                        if rrow in allowed
                    ]
                else:
                    pairs = [
                        lrow + rrow
                        for lrow, key in zip(lrows, map(extract, lrows))
                        for rrow in get_bucket(key) or ()
                        if rrow in allowed
                    ]
            elif positions is not None and len(positions) == 1:
                p = positions[0]
                pairs = [
                    lrow + rrow
                    for lrow in lrows
                    for rrow in get_bucket(lrow[p]) or ()
                ]
            else:
                pairs = [
                    lrow + rrow
                    for lrow, key in zip(lrows, map(extract, lrows))
                    for rrow in get_bucket(key) or ()
                ]
        else:
            residual = self._residual.bind(left.schema, right.schema)
            pairs = [
                lrow + rrow
                for lrow, key in zip(lrows, map(extract, lrows))
                for rrow in get_bucket(key) or ()
                if residual(lrow, rrow) is True
            ]
        return pairs, None

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        result = Relation(
            self._schemas.get(left.schema, right.schema),
            bag=left.bag or right.bag,
        )
        if _batch_mode(self, left.distinct_count()):
            pairs, pair_counts = self._probe_pairs(left, right)
            if pair_counts is None:
                result._rows = dict.fromkeys(pairs, 1)
            else:
                result._rows = dict(zip(pairs, pair_counts))
            _trace(context, "join", len(left) + len(right), len(result))
            return result
        buckets = _hash_buckets(right, self.right_keys, need_rows=True)
        left_key, _ = self.left_keys.bind(left.schema)
        get_bucket = buckets.get
        insert = result.insert
        if self._residual.is_true:
            for lrow in left:
                bucket = get_bucket(left_key(lrow))
                if bucket:
                    for rrow in bucket:
                        insert(lrow + rrow, _validated=True)
        else:
            residual = self._residual.bind(left.schema, right.schema)
            for lrow in left:
                bucket = get_bucket(left_key(lrow))
                if bucket:
                    for rrow in bucket:
                        if residual(lrow, rrow) is True:
                            insert(lrow + rrow, _validated=True)
        _trace(context, "join", len(left) + len(right), len(result))
        return result

    def produce_batch(self, context):
        left = self.left.execute(context)
        right = self.right.execute(context)
        return self.produce_batch_from(context, left, right)

    def produce_batch_from(
        self, context, left, right, probe=None, right_restrict=None
    ):
        """Batch production over already-executed inputs.

        Fused regions execute the join's children themselves so they can
        compute side-pushdown masks between child execution and the
        probe; ``probe``/``right_restrict`` carry those masks down into
        :meth:`_probe_pairs`.
        """
        pairs, pair_counts = self._probe_pairs(left, right, probe, right_restrict)
        out = columnar.ColumnBatch.from_rows(
            self._schemas.get(left.schema, right.schema),
            left.bag or right.bag,
            pairs,
            pair_counts,
        )
        _trace(context, "join", len(left) + len(right), len(out))
        return out

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        rows = max(left.rows, right.rows)
        distinct = [
            _distinct_keys(cards, side.name, keys.attrs)
            for side, keys in (
                (self.left, self.left_keys),
                (self.right, self.right_keys),
            )
            if isinstance(side, ScanOp)
        ]
        distinct = [value for value in distinct if value is not None]
        if distinct:
            # |L ⋈ R| ≈ |L| · |R| / max(V(L, a), V(R, b)) from observed
            # distinct-key counts (falls back to the containment-free
            # max(|L|, |R|) guess without statistics).
            rows = left.rows * right.rows / max(distinct)
        est = PlanEstimate(rows=max(rows, 1.0))
        est.absorb(left)
        est.absorb(right)
        est.built += right.rows
        est.probed += left.rows
        return est

    def describe(self) -> str:
        return f"hash_join[{self.left_keys.attrs or self.left_keys.exprs}]"


class NestedLoopJoinOp(_BinaryOp):
    """Theta-join fallback for predicates without hashable equalities."""

    op_name = "join"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: P.Predicate,
    ):
        super().__init__(left, right)
        self._pred = _PredicateCache(predicate)
        self._schemas = _CombinedSchemaCache("_join")

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        result = Relation(
            self._schemas.get(left.schema, right.schema),
            bag=left.bag or right.bag,
        )
        test = self._pred.bind(left.schema, right.schema)
        insert = result.insert
        for lrow in left:
            for rrow in right:
                if test(lrow, rrow) is True:
                    insert(lrow + rrow, _validated=True)
        _trace(context, "join", len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=left.rows * right.rows * FILTER_SELECTIVITY)
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows * right.rows
        return est

    def describe(self) -> str:
        return f"nl_join[{self._pred.predicate!r}]"


def _key_has_null(key) -> bool:
    if key is NULL:
        return True
    if type(key) is tuple:
        return any(value is NULL for value in key)
    return False


class HashSemiJoinOp(_BinaryOp):
    """Semijoin/antijoin on equality keys, hash- and index-accelerated.

    Execution regimes, fastest applicable wins:

    1. no residual, both sides indexed on the key columns — probe per
       *distinct key* of the left index and emit whole buckets;
    2. no residual — probe per distinct left row against the right key set
       (pre-built index or one ephemeral hash pass);
    3. residual predicate — hash-partition by the equality keys and test
       the residual only within the matching bucket (the naive backend
       degrades to a full nested loop here).  Probe keys containing NULL
       never match, mirroring the predicate path where ``NULL = NULL`` is
       *unknown* — while regime 2 mirrors the naive hash path, which
       matches NULL keys by identity.
    """

    op_name = "semijoin"
    keep_matching = True

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys,
        right_keys,
        residual: P.Predicate = P.TRUE,
    ):
        super().__init__(left, right)
        self.left_keys = _KeySide(left_keys, "left")
        self.right_keys = _KeySide(right_keys, "right")
        self._residual = _PredicateCache(residual)

    def _probe_dict(self, left: Relation, right: Relation, batch: bool) -> dict:
        """The selected ``{row: count}`` dict, shared by both result forms.

        ``batch`` picks the whole-column inner loops; regime selection and
        every index interaction (build touches, amortization accounting,
        probe touches) are identical either way, which is what keeps
        ``IndexUsage`` ledgers byte-identical across row, batch, and fused
        execution.
        """
        keep = self.keep_matching
        left_key, positions = self.left_keys.bind(left.schema)
        if not self._residual.is_true:
            buckets = _hash_buckets(right, self.right_keys, need_rows=True)
            residual = self._residual.bind(left.schema, right.schema)
            get_bucket = buckets.get
            if batch:
                src_rows = left._rows
                # itemgetter extracts plain-column keys at C speed with the
                # same convention as key_fn (bare value / tuple).
                extract = (
                    _itemgetter(*positions) if positions is not None else left_key
                )
                keys = map(extract, src_rows)
                return {
                    lrow: count
                    for (lrow, count), key in zip(src_rows.items(), keys)
                    if (
                        not _key_has_null(key)
                        and any(
                            residual(lrow, rrow) is True
                            for rrow in get_bucket(key) or ()
                        )
                    )
                    is keep
                }

            def has_match(lrow: tuple) -> bool:
                key = left_key(lrow)
                if _key_has_null(key):
                    return False
                bucket = get_bucket(key)
                if not bucket:
                    return False
                return any(residual(lrow, rrow) is True for rrow in bucket)

            return {
                row: count
                for row, count in left._rows.items()
                if has_match(row) is keep
            }
        right_keys = _hash_buckets(right, self.right_keys, need_rows=False)
        # Row-wise probing forgoes one key computation + membership test per
        # distinct left row; charge that against a declared left index so a
        # hot probe side (e.g. a big working copy inside a write
        # transaction) gets its index built instead of probing row-wise.
        left_index = (
            left.amortized_index(positions, forgone_work=left.distinct_count())
            if positions is not None
            else None
        )
        if left_index is not None:
            # Distinct-key probing: one membership test per key, whole
            # buckets emitted.  This is what makes repeated referential
            # checks over a large indexed relation near-instant.
            left_index.touch("probe")
            count_of = _count_getter(left)
            selected: dict = {}
            for key, bucket in left_index.buckets.items():
                if (key in right_keys) == keep:
                    for row in bucket:
                        selected[row] = count_of(row)
            return selected
        if batch:
            src_rows = left._rows
            # Key extraction, membership, and the dict fill all run as
            # chained C iterators (map/compress); only a NULL-matching
            # quirk would differ, and regime 2 matches NULL by identity
            # exactly like the row path's hash membership.
            extract = (
                _itemgetter(*positions) if positions is not None else left_key
            )
            mask = map(right_keys.__contains__, map(extract, src_rows))
            if not keep:
                mask = map(_not, mask)
            return dict(compress(src_rows.items(), mask))
        if keep:
            return {
                row: count
                for row, count in left._rows.items()
                if left_key(row) in right_keys
            }
        return {
            row: count
            for row, count in left._rows.items()
            if left_key(row) not in right_keys
        }

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        batch = _batch_mode(self, left.distinct_count())
        result = Relation(left.schema, bag=left.bag)
        result._rows = self._probe_dict(left, right, batch)
        _trace(context, self.op_name, len(left) + len(right), len(result))
        return result

    def produce_batch(self, context):
        left = self.left.execute(context)
        right = self.right.execute(context)
        selected = self._probe_dict(left, right, batch=True)
        counts = None
        if left.bag and any(count != 1 for count in selected.values()):
            counts = list(selected.values())
        out = columnar.ColumnBatch.from_rows(
            left.schema, left.bag, list(selected), counts
        )
        _trace(context, self.op_name, len(left) + len(right), len(out))
        return out

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=left.rows * SEMI_SELECTIVITY)
        est.absorb(left)
        est.absorb(right)
        est.built += right.rows
        est.probed += left.rows
        return est

    def describe(self) -> str:
        keys = self.left_keys.attrs or self.left_keys.exprs
        suffix = "" if self._residual.is_true else "+residual"
        return f"hash_{self.op_name}[{keys}]{suffix}"


class HashAntiJoinOp(HashSemiJoinOp):
    """Antijoin: left rows with no key match in right (Table 1 row 2)."""

    op_name = "antijoin"
    keep_matching = False


class NestedLoopSemiOp(_BinaryOp):
    """Semijoin/antijoin fallback for general predicates."""

    op_name = "semijoin"
    keep_matching = True

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: P.Predicate,
    ):
        super().__init__(left, right)
        self._pred = _PredicateCache(predicate)

    def execute(self, context) -> Relation:
        left = self.left.execute(context)
        right = self.right.execute(context)
        test = self._pred.bind(left.schema, right.schema)
        right_rows = list(right.rows())

        def has_match(row: tuple) -> bool:
            return any(test(row, other) is True for other in right_rows)

        if self.keep_matching:
            result = left.filtered(has_match)
        else:
            result = left.filtered(lambda row: not has_match(row))
        _trace(context, self.op_name, len(left) + len(right), len(result))
        return result

    def estimate(self, cards=None) -> PlanEstimate:
        left = self.left.estimate(cards)
        right = self.right.estimate(cards)
        est = PlanEstimate(rows=left.rows * SEMI_SELECTIVITY)
        est.absorb(left)
        est.absorb(right)
        est.scanned += left.rows * right.rows
        return est

    def describe(self) -> str:
        return f"nl_{self.op_name}[{self._pred.predicate!r}]"


class NestedLoopAntiOp(NestedLoopSemiOp):
    op_name = "antijoin"
    keep_matching = False


#: Operators carrying a whole-column batch path (HashAntiJoinOp is covered
#: through its HashSemiJoinOp base).
_BATCH_OPERATORS = (
    FilterOp,
    ProjectOp,
    HashJoinOp,
    HashSemiJoinOp,
    UnionOp,
    DifferenceOp,
)


# ---------------------------------------------------------------------------
# Fused pipeline regions
# ---------------------------------------------------------------------------


def _pushdown_columns(node, schema: RelationSchema, columns: list) -> bool:
    """Collect the 0-based columns a predicate reads; False = not pushable.

    A filter directly above an equi hash join can run *before* pair
    construction when every column it reads resolves positionally against
    the combined schema and no subexpression can raise.  Division
    disqualifies: pushed predicates are evaluated on probe/build rows the
    join would never have matched, so a divide-by-zero there would raise
    where the row path raises nothing.  Everything else in the paper's
    expression language (comparisons, +,-,*, boolean connectives, IS
    NULL) is total under three-valued logic, so pre- and post-join
    evaluation agree row for row.
    """
    if isinstance(node, (P.TruePred, P.FalsePred, P.Const)):
        return True
    if isinstance(node, P.ColRef):
        try:
            which, position = P._resolve_position(node, schema, None)
        except Exception:
            return False
        if which != 0:
            return False
        columns.append(position)
        return True
    if isinstance(node, (P.Comparison, P.Arith, P.And, P.Or)):
        if isinstance(node, P.Arith) and node.op == "/":
            return False
        return _pushdown_columns(
            node.left, schema, columns
        ) and _pushdown_columns(node.right, schema, columns)
    if isinstance(node, (P.Not, P.IsNull)):
        return _pushdown_columns(node.operand, schema, columns)
    return False


def _conjuncts(node) -> list:
    """Flatten a predicate's top-level conjunction (planner-merged selects)."""
    if isinstance(node, P.And):
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


def _conjoin(conjuncts):
    predicate = conjuncts[0]
    for conjunct in conjuncts[1:]:
        predicate = P.And(predicate, conjunct)
    return predicate


def _shift_predicate(node, schema: RelationSchema, shift: int):
    """Rebind a single-side predicate onto that side's own schema.

    Every column reference becomes a positional (1-based) reference
    shifted down by the left arity, so the compiled kernel runs directly
    on bare probe/build rows instead of concatenated pairs.
    """
    if isinstance(node, (P.TruePred, P.FalsePred, P.Const)):
        return node
    if isinstance(node, P.ColRef):
        _, position = P._resolve_position(node, schema, None)
        return P.ColRef(position - shift + 1)
    if isinstance(node, P.Comparison):
        return P.Comparison(
            node.op,
            _shift_predicate(node.left, schema, shift),
            _shift_predicate(node.right, schema, shift),
        )
    if isinstance(node, P.Arith):
        return P.Arith(
            node.op,
            _shift_predicate(node.left, schema, shift),
            _shift_predicate(node.right, schema, shift),
        )
    if isinstance(node, P.And):
        return P.And(
            _shift_predicate(node.left, schema, shift),
            _shift_predicate(node.right, schema, shift),
        )
    if isinstance(node, P.Or):
        return P.Or(
            _shift_predicate(node.left, schema, shift),
            _shift_predicate(node.right, schema, shift),
        )
    if isinstance(node, P.Not):
        return P.Not(_shift_predicate(node.operand, schema, shift))
    if isinstance(node, P.IsNull):
        return P.IsNull(_shift_predicate(node.operand, schema, shift))
    raise EvaluationError(f"cannot rebind {node!r} for pushdown")


class FusedPipelineOp(PhysicalOperator):
    """A maximal select/project chain executed as one batch kernel.

    ``root`` is the chain's topmost stage operator; ``source`` is the
    operator feeding the chain (scan, Δ-scan, hash join, or hash
    semi/antijoin).  The region executes by asking the root for a
    :class:`ColumnBatch` — each stage pulls its child's batch, applies
    its kernel to the row list, and hands the batch upward — so output
    tuples and the result dict are built exactly once, at the region
    boundary, instead of per operator.  The stage chain stays intact
    underneath (``children()`` exposes it), so plan walks (explain,
    hints, eligibility annotation) and the unfused fallback see the
    original operators.

    Over an equi hash-join source the region goes one step further:
    filter stages adjacent to the join whose predicate reads only one
    side (and cannot raise — see :func:`_pushdown_columns`) are compiled
    against that side's own schema and applied *before* pair
    construction.  A left-side predicate shrinks the probe rows; a
    right-side predicate shrinks the build side to its survivors (or, if
    a persistent index serves the build, becomes a survivor set consulted
    during bucket expansion) — so pairs that a stage would immediately
    discard are never concatenated at all, and index usage accounting
    stays identical to the row path's.
    """

    op_name = "fused"

    def __init__(
        self,
        root: PhysicalOperator,
        source: PhysicalOperator,
        stages: Tuple[PhysicalOperator, ...],
    ):
        self.root = root
        self.source = source
        self.stages = stages
        # The run of filter stages adjacent to the source, nearest first —
        # pushdown candidates when the source is a residual-free hash
        # join.  Filters commute (total mask intersection), so any subset
        # of the run may move below the pair construction.
        tail = []
        for stage in reversed(stages):
            if not isinstance(stage, FilterOp):
                break
            tail.append(stage)
        self._tail_filters = tuple(tail)
        self._pushdown: dict = _SchemaLRU()

    def children(self) -> tuple:
        return (self.root,)

    def execute(self, context) -> Relation:
        if not _fuse_mode(self):
            return self.root.execute(context)
        source = self.source
        if (
            self._tail_filters
            and isinstance(source, HashJoinOp)
            and source._residual.is_true
        ):
            left = source.left.execute(context)
            right = source.right.execute(context)
            pushed, remaining = self._join_pushdown(left.schema, right.schema)
            batch = self._pushed_join_batch(context, source, left, right, pushed)
            for stage in reversed(remaining):
                batch = stage.apply_batch(batch, context)
            return batch.to_relation()
        return self.root.produce_batch(context).to_relation()

    def _join_pushdown(self, left_schema, right_schema):
        """``(pushed, remaining)`` for this schema pair, cached.

        ``pushed`` is a tuple of ``(side, kernel)`` mask kernels bound to
        the side schemas; ``remaining`` is the stage chain (top-down)
        minus the pushed filters.
        """
        key = (left_schema, right_schema)
        plan = self._pushdown.get(key)
        if plan is None:
            plan = self._analyze_pushdown(left_schema, right_schema)
            self._pushdown[key] = plan
        return plan

    def _analyze_pushdown(self, left_schema, right_schema):
        combined = self.source._schemas.get(left_schema, right_schema)
        larity = left_schema.arity
        pushed = []
        # id(stage) -> residual FilterOp over the unpushed conjuncts, or
        # None when the whole predicate moved below the join.  In Kleene
        # logic A∧B is True iff both conjuncts are, so splitting a
        # planner-merged conjunction into sequential keep-if-True masks
        # is exact.
        replacements: dict = {}
        for stage in self._tail_filters:
            sides = {"left": [], "right": []}
            rest = []
            for conjunct in _conjuncts(stage._pred.predicate):
                columns: list = []
                if not _pushdown_columns(conjunct, combined, columns):
                    rest.append(conjunct)
                elif not columns:
                    rest.append(conjunct)  # constant: nothing to gain
                elif all(position < larity for position in columns):
                    sides["left"].append(conjunct)
                elif all(position >= larity for position in columns):
                    sides["right"].append(conjunct)
                else:
                    rest.append(conjunct)  # reads both sides
            if not sides["left"] and not sides["right"]:
                continue
            for side, shift, schema in (
                ("left", 0, left_schema),
                ("right", larity, right_schema),
            ):
                if sides[side]:
                    remapped = _shift_predicate(
                        _conjoin(sides[side]), combined, shift
                    )
                    pushed.append(
                        (side, columnar.compile_predicate_kernel(remapped, schema))
                    )
            replacements[id(stage)] = (
                FilterOp(stage.child, _conjoin(rest)) if rest else None
            )
        remaining = []
        for stage in self.stages:
            if id(stage) in replacements:
                residual = replacements[id(stage)]
                if residual is not None:
                    remaining.append(residual)
            else:
                remaining.append(stage)
        return tuple(pushed), tuple(remaining)

    @staticmethod
    def _pushed_join_batch(context, source, left, right, pushed):
        lrows = lcounts = None
        survivors = None
        for side, kernel in pushed:
            if side == "left":
                if lrows is None:
                    lrows, lcounts = left.rows_and_counts()
                mask = kernel(lrows)
                lrows = list(compress(lrows, mask))
                if lcounts is not None:
                    lcounts = list(compress(lcounts, mask))
            else:
                if survivors is None:
                    survivors = list(right.rows())
                mask = kernel(survivors)
                survivors = list(compress(survivors, mask))
        probe = None if lrows is None else (lrows, lcounts)
        return source.produce_batch_from(context, left, right, probe, survivors)

    def estimate(self, cards=None) -> PlanEstimate:
        return self.root.estimate(cards)

    def describe(self) -> str:
        names = [op.op_name for op in self.stages]
        names.append(self.source.op_name)
        return f"fused[{'<-'.join(names)}]"


#: Stage operators a fused region may chain above its source.
_FUSE_STAGES = (FilterOp, ProjectOp)

#: Operators that may source a region.  Everything else — index selects
#: (bucket lookups are already sub-linear), renames (schema-only), set
#: operators, nested-loop fallbacks — declines fusion and bounds a region.
_FUSE_SOURCES = (ScanOp, DeltaScanOp, HashJoinOp, HashSemiJoinOp)


def fuse_pipelines(plan: PhysicalOperator) -> PhysicalOperator:
    """Wrap maximal select/project pipeline chains in fused regions.

    A chain of :data:`_FUSE_STAGES` operators over a :data:`_FUSE_SOURCES`
    operator forms a region when fusion can actually skip an operator
    boundary: join/semi sources pay the dominant cost in output-tuple
    construction, so one stage suffices; scan sources only win once two
    stages collapse (a single stage over a scan already runs its whole
    batch kernel without an intermediate).  Runs at compile time, before
    the plan enters the cache.
    """
    return _fuse(plan)


def _fuse(op: PhysicalOperator) -> PhysicalOperator:
    if isinstance(op, _FUSE_STAGES):
        stages = [op]
        cursor = op.child
        while isinstance(cursor, _FUSE_STAGES):
            stages.append(cursor)
            cursor = cursor.child
        if isinstance(cursor, _FUSE_SOURCES):
            needed = 1 if isinstance(cursor, _BinaryOp) else 2
            if len(stages) >= needed:
                _fuse_children(cursor)
                return FusedPipelineOp(op, cursor, tuple(stages))
        # No region at this chain; regions may still form below it.
        stages[-1].child = _fuse(cursor)
        return op
    _fuse_children(op)
    return op


def _fuse_children(op: PhysicalOperator) -> None:
    child = getattr(op, "child", None)
    if child is not None:
        op.child = _fuse(child)
    elif isinstance(op, _BinaryOp):
        op.left = _fuse(op.left)
        op.right = _fuse(op.right)
