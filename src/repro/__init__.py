"""repro — transaction modification integrity control.

A full reproduction of:

    Paul W.P.J. Grefen, *Combining Theory and Practice in Integrity
    Control: A Declarative Approach to the Specification of a Transaction
    Modification Subsystem*, Proc. 19th VLDB, Dublin, Ireland, 1993.

The package implements the paper's complete stack from scratch:

* a main-memory relational engine with the paper's transaction model
  (:mod:`repro.engine`);
* the extended relational algebra including the ``alarm`` statement
  (:mod:`repro.algebra`);
* the constraint language CL and the rule language RL
  (:mod:`repro.calculus`, :mod:`repro.core.rule_language`);
* the transaction modification subsystem — trigger generation, rule
  translation and optimization, the ModT fixpoint, integrity programs, and
  triggering-graph validation (:mod:`repro.core`);
* the parallel/fragmented extension with a simulated multi-node cost model
  (:mod:`repro.parallel`), materialized views via transaction modification
  (:mod:`repro.views`), and workload generators (:mod:`repro.workloads`).

Quickstart::

    from repro import (
        Database, DatabaseSchema, RelationSchema, Session,
        IntegrityController, STRING, FLOAT,
    )

    schema = DatabaseSchema([
        RelationSchema("beer", [("name", STRING), ("type", STRING),
                                ("brewery", STRING), ("alcohol", FLOAT)]),
        RelationSchema("brewery", [("name", STRING),
                                   ("city", STRING, True),
                                   ("country", STRING, True)]),
    ])
    db = Database(schema)
    controller = IntegrityController(schema)
    controller.add_constraint(
        "beer_alcohol", "(forall x in beer)(x.alcohol >= 0)")
    session = Session(db, controller)
    result = session.execute(
        'begin insert(beer, ("pils", "lager", "heineken", 5.0)); end')
"""

from repro.engine import (
    BOOL,
    Database,
    DatabaseSchema,
    FLOAT,
    INT,
    NULL,
    Relation,
    RelationSchema,
    Session,
    STRING,
    Transaction,
    TransactionManager,
    TransactionResult,
    TransactionStatus,
)
from repro.algebra import (
    parse_expression,
    parse_program,
    parse_transaction,
)
from repro.calculus import evaluate_constraint, parse_constraint, render_constraint
from repro.core import (
    IntegrityController,
    IntegrityRule,
    TriggeringGraph,
    generate_triggers,
    parse_rule,
)
from repro.errors import (
    ConstraintViolation,
    IntegrityError,
    ReproError,
    TransactionAborted,
    TriggerCycleError,
)

__version__ = "1.0.0"

__all__ = [
    "BOOL",
    "ConstraintViolation",
    "Database",
    "DatabaseSchema",
    "FLOAT",
    "INT",
    "IntegrityController",
    "IntegrityError",
    "IntegrityRule",
    "NULL",
    "Relation",
    "RelationSchema",
    "ReproError",
    "STRING",
    "Session",
    "Transaction",
    "TransactionAborted",
    "TransactionManager",
    "TransactionResult",
    "TransactionStatus",
    "TriggerCycleError",
    "TriggeringGraph",
    "evaluate_constraint",
    "generate_triggers",
    "parse_constraint",
    "parse_expression",
    "parse_program",
    "parse_rule",
    "parse_transaction",
    "render_constraint",
    "__version__",
]
